//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements exactly the deterministic API subset the workspace uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`] methods
//! `gen_range` / `gen_bool` / `gen`. The generator is xoshiro256++ seeded
//! through SplitMix64 — high-quality, fast, and fully reproducible, which is
//! all the experiments require (no cryptographic claims).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose full state is derived from `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// SplitMix64 step — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// A type that can be drawn uniformly from a range.
pub trait SampleUniform: Sized {
    /// Uniform sample from the half-open range `[lo, hi)`.
    fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
    /// Uniform sample from the closed range `[lo, hi]`.
    fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128;
                (lo as i128 + (rng() as u128 % span) as i128) as $t
            }
            fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range called with empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng() as u128 % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let unit = (rng() >> 11) as f64 / (1u64 << 53) as f64;
                lo + ((hi - lo) as f64 * unit) as $t
            }
            fn sample_closed(rng: &mut dyn FnMut() -> u64, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// A range argument accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_from(self, rng: &mut dyn FnMut() -> u64) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_closed(rng, lo, hi)
    }
}

/// A type that `Rng::gen` can produce.
pub trait Standard: Sized {
    /// Draws a sample covering the type's full value range (floats: `[0,1)`).
    fn standard_sample(bits: u64) -> Self;
}

impl Standard for u64 {
    fn standard_sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn standard_sample(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    fn standard_sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for f64 {
    fn standard_sample(bits: u64) -> Self {
        (bits >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl Standard for f32 {
    fn standard_sample(bits: u64) -> Self {
        ((bits >> 11) as f64 / (1u64 << 53) as f64) as f32
    }
}

/// High-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let mut draw = || self.next_u64();
        range.sample_from(&mut draw)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p.clamp(0.0, 1.0)
    }

    /// A sample of `T` covering its full value range.
    fn gen<T: Standard>(&mut self) -> T {
        T::standard_sample(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..9);
            assert!((3..9).contains(&v));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
            let i = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&i));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits {hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
