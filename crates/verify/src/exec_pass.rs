//! Pass 6 — exec safety.
//!
//! The plan equivalence pass (pass 5) proves a compiled plan is the same
//! *program* as its graph; this pass proves the program is safe to run
//! *in parallel*. It symbolically executes an [`ExecPlan`]'s record
//! stream together with each record's declared write-decomposition
//! ([`vit_plan::ExecContract`], resolved through the same
//! `vit_tensor::row_chunks` oracle the kernels dispatch with) and the
//! wavefront scheduler's counter metadata ([`vit_graph::SchedMeta`]),
//! and checks four families of invariants:
//!
//! * **write-disjointness** — every record's parallel chunks partition
//!   its output range exactly, at every sampled worker count: no
//!   write-write overlap (`V050`), no coverage gap or escaping chunk
//!   (`V051`), and no output range aliasing one of the record's own
//!   inputs (`V052`);
//! * **reclamation soundness** — the compile-time liveness decisions
//!   recorded in [`PlanRecord::frees`] never free the plan output, a
//!   range no record owns, or a range a later record still reads
//!   un-redefined (`V053`); and the scheduler's in-degree/consumer
//!   counters — which alone decide dispatch and buffer recycling under
//!   *any* topological interleaving — equal the graph's edge counts
//!   (`V054`, `V055`);
//! * **FP-reassociation routing** — a decomposition that declares float
//!   reassociation must map to a kernel class with a registered tolerance
//!   bound (`vit_tensor::ops::reference::tolerance`); a reassociating
//!   record whose op has no tolerance class has left the exact tier with
//!   no oracle to land on, and is flagged (`V056`);
//! * **unsafe/indexing audit** — `unsafe` blocks without a `// SAFETY:`
//!   justification (`V057`) and unchecked indexing (`V058`) in the
//!   `vit-tensor`/`vit-plan` hot paths, including the packed GEMM and
//!   reference-oracle kernel modules.
//!
//! [`verify_shadow`] is the dynamic cross-check: it drives the plan's
//! debug shadow-access replay and reports `V059` when the runtime
//! witness observes a discipline violation the static verdict missed.
//!
//! [`PlanRecord::frees`]: vit_plan::PlanRecord::frees

use std::fmt;

use crate::diag::{Code, Diagnostic, Span};
use vit_graph::{Graph, SchedMeta};
use vit_plan::{BufRange, ExecPlan, PlanRecord};

/// Worker counts at which chunk decompositions are proved. Matches the
/// differential suites' thread samples; each record is additionally
/// checked at its own maximum chunk count (one worker per row).
const WIDTHS: [usize; 3] = [1, 2, 8];

/// Runs the exec-safety pass over `plan` (compiled from `graph`) and the
/// scheduler metadata `sched` the wavefront executor would run it with.
///
/// Includes the shadow cross-validation ([`verify_shadow`]) at the
/// sampled worker counts, so a clean return means the static verdict and
/// the dynamic witness agree.
pub fn verify_exec_safety(graph: &Graph, plan: &ExecPlan, sched: &SchedMeta) -> Vec<Diagnostic> {
    let mut diags = verify_plan_exec(plan);
    diags.extend(verify_sched_meta(graph, sched));
    diags.extend(verify_shadow(plan, &diags, &WIDTHS));
    diags
}

/// The plan-local static checks: write-disjointness (`V050`–`V052`),
/// reclamation soundness of the recorded liveness (`V053`), and FP
/// reassociation hazards (`V056`).
pub fn verify_plan_exec(plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let recs = plan.records();
    for (ri, rec) in recs.iter().enumerate() {
        let span = || Span::Node {
            index: ri,
            name: rec.name.clone(),
        };

        // V052: the kernels read inputs while storing outputs, so an
        // output range aliasing an input races even single-threaded.
        if let Some(inp) = rec.inputs.iter().find(|i| i.overlaps(&rec.out)) {
            diags.push(
                Diagnostic::new(
                    Code::ExecAlias,
                    span(),
                    format!(
                        "output range [{}, {}) overlaps input range [{}, {})",
                        rec.out.offset,
                        rec.out.end(),
                        inp.offset,
                        inp.end()
                    ),
                )
                .with_help("records must never compute in place; allocate a fresh range"),
            );
        }

        // V050/V051: the chunk decomposition must partition the output
        // range exactly at every sampled worker count. One diagnostic
        // per record per code, reporting the narrowest failing width.
        let max_chunks = match &rec.contract {
            vit_plan::ExecContract::RowTiled { row_len, .. } if *row_len > 0 => {
                rec.out.len / *row_len
            }
            _ => 0,
        };
        let mut overlap = None;
        let mut gap = None;
        for width in WIDTHS.iter().copied().chain(Some(max_chunks.max(1))) {
            let mut chunks = rec.contract.chunk_ranges(rec.out, width);
            chunks.sort_by_key(|c| c.offset);
            for w in chunks.windows(2) {
                if w[0].overlaps(&w[1]) && overlap.is_none() {
                    overlap = Some((width, w[0], w[1]));
                }
                if w[1].offset > w[0].end() && gap.is_none() {
                    gap = Some((width, format!("gap [{}, {})", w[0].end(), w[1].offset)));
                }
            }
            let first = chunks.first().copied().unwrap_or(rec.out);
            let last = chunks.last().copied().unwrap_or(rec.out);
            if gap.is_none() && (first.offset != rec.out.offset || last.end() != rec.out.end()) {
                gap = Some((
                    width,
                    format!(
                        "chunks span [{}, {}) but the output range is [{}, {})",
                        first.offset,
                        last.end(),
                        rec.out.offset,
                        rec.out.end()
                    ),
                ));
            }
        }
        if let Some((width, a, b)) = overlap {
            diags.push(
                Diagnostic::new(
                    Code::ChunkOverlap,
                    span(),
                    format!(
                        "at {width} workers, chunks [{}, {}) and [{}, {}) overlap",
                        a.offset,
                        a.end(),
                        b.offset,
                        b.end()
                    ),
                )
                .with_help("two workers would store the same elements: a write-write race"),
            );
        }
        if let Some((width, what)) = gap {
            diags.push(
                Diagnostic::new(
                    Code::ChunkGap,
                    span(),
                    format!("at {width} workers, {what}"),
                )
                .with_help("unwritten elements are stale reads for every consumer"),
            );
        }

        // V056: reassociation is legal only inside the tolerance tier. A
        // record may leave the exact tier (bit-identity against the
        // reference oracle) only if its op maps to a kernel class with a
        // registered tolerance bound; otherwise nothing defines how far
        // its outputs may drift and no differential can hold it.
        if rec.contract.reassociates() && tolerance_class(&rec.op).is_none() {
            diags.push(
                Diagnostic::new(
                    Code::FpReassociation,
                    span(),
                    format!(
                        "decomposition declares FP reassociation, but op `{}` \
                         maps to no registered tolerance class",
                        rec.op.kind_name()
                    ),
                )
                .with_help(
                    "register a tolerance bound in vit_tensor::ops::reference \
                     or keep the kernel in the exact tier",
                ),
            );
        }
    }

    // V053: replay the recorded liveness. A free is sound iff the range
    // was some earlier record's output, is not the plan output, and no
    // later record reads it before a fresh record's output covers the
    // read again (the allocator re-issuing the space).
    for (ri, rec) in recs.iter().enumerate() {
        for f in &rec.frees {
            if f.len == 0 {
                continue;
            }
            let span = Span::Node {
                index: ri,
                name: rec.name.clone(),
            };
            // The plan output is read once more at extraction, after the
            // last record. Freeing space that overlaps it is fine only
            // while a later record still redefines the whole output range
            // (the allocator recycling dead space *into* the output);
            // once the output value itself is live, freeing it strands
            // the extraction on reclaimed memory.
            let out = plan.output_range();
            if f.overlaps(&out)
                && !recs[ri + 1..]
                    .iter()
                    .any(|w| w.out.offset <= out.offset && out.end() <= w.out.end())
            {
                diags.push(Diagnostic::new(
                    Code::PrematureFree,
                    span,
                    format!(
                        "frees [{}, {}), which overlaps the live plan output",
                        f.offset,
                        f.end()
                    ),
                ));
                continue;
            }
            if !recs[..=ri].iter().any(|p| p.out.overlaps(f)) {
                diags.push(Diagnostic::new(
                    Code::PrematureFree,
                    span,
                    format!("frees [{}, {}), which no record owns", f.offset, f.end()),
                ));
                continue;
            }
            if let Some((si, inp)) = first_stale_reader(recs, ri, f) {
                diags.push(
                    Diagnostic::new(
                        Code::PrematureFree,
                        span,
                        format!(
                            "frees [{}, {}) but record {si} `{}` still reads [{}, {})",
                            f.offset,
                            f.end(),
                            recs[si].name,
                            inp.offset,
                            inp.end()
                        ),
                    )
                    .with_help("the arena could re-issue the range under the reader"),
                );
            }
        }
    }

    diags
}

/// The kernel class whose registered tolerance bound
/// ([`vit_tensor::ops::reference::tolerance`]) governs `op`'s outputs in
/// the tolerance tier, or `None` when the op has no class and must stay
/// in the exact (bit-identity) tier.
pub fn tolerance_class(op: &vit_graph::Op) -> Option<vit_tensor::ops::reference::KernelClass> {
    use vit_tensor::ops::reference::KernelClass;
    match op {
        vit_graph::Op::Conv2d { .. } => Some(KernelClass::Conv),
        vit_graph::Op::Linear { .. } => Some(KernelClass::Gemm),
        _ => None,
    }
}

/// The first record after `ri` that reads into the freed range `f`
/// without an intervening record's output covering that read (which
/// would mean the read targets a freshly re-issued value, not the freed
/// one).
fn first_stale_reader(recs: &[PlanRecord], ri: usize, f: &BufRange) -> Option<(usize, BufRange)> {
    for (si, reader) in recs.iter().enumerate().skip(ri + 1) {
        for inp in &reader.inputs {
            if !inp.overlaps(f) {
                continue;
            }
            let redefined = recs[ri + 1..si]
                .iter()
                .any(|w| w.out.offset <= inp.offset && inp.end() <= w.out.end());
            if !redefined {
                return Some((si, *inp));
            }
        }
    }
    None
}

/// The scheduler-metadata checks (`V054`, `V055`): the wavefront
/// executor's dispatch and reclamation counters must equal the counts
/// the graph's edges imply, or some topological interleaving reads
/// before a write or recycles a live buffer.
pub fn verify_sched_meta(graph: &Graph, sched: &SchedMeta) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let truth = SchedMeta::of(graph);
    for (id, node) in graph.iter() {
        let i = id.index();
        let span = || Span::Node {
            index: i,
            name: node.name.clone(),
        };
        let claimed = sched.indegree().get(i).copied();
        if claimed != Some(truth.indegree()[i]) {
            diags.push(
                Diagnostic::new(
                    Code::SchedIndegree,
                    span(),
                    format!(
                        "scheduler in-degree is {claimed:?}, the graph has {} input edges",
                        truth.indegree()[i]
                    ),
                )
                .with_help("an undercounted node dispatches before its inputs are written"),
            );
        }
        let claimed = sched.consumers().get(i).copied();
        if claimed != Some(truth.consumers()[i]) {
            diags.push(
                Diagnostic::new(
                    Code::SchedConsumers,
                    span(),
                    format!(
                        "scheduler consumer count is {claimed:?}, the graph implies {}",
                        truth.consumers()[i]
                    ),
                )
                .with_help("an undercounted buffer is recycled while a reader is pending"),
            );
        }
    }
    diags
}

/// The dynamic cross-check (`V059`): replays the plan against the debug
/// shadow-access tracker at each worker count in `widths` and reports a
/// divergence when the runtime witness observes a memory-discipline
/// violation although the static verdict (`V050`–`V053` in
/// `static_diags`) predicted none.
///
/// The converse — static findings with a clean shadow — is *not* a
/// divergence: the shadow tracker only sees elements that are actually
/// touched, so e.g. a chunk escaping into unowned space is invisible to
/// it while still statically unsound.
pub fn verify_shadow(
    plan: &ExecPlan,
    static_diags: &[Diagnostic],
    widths: &[usize],
) -> Vec<Diagnostic> {
    let predicted_dirty = static_diags.iter().any(|d| {
        matches!(
            d.code,
            Code::ChunkOverlap | Code::ChunkGap | Code::ExecAlias | Code::PrematureFree
        )
    });
    if predicted_dirty {
        return Vec::new();
    }
    let mut diags = Vec::new();
    for &threads in widths {
        let violations = plan.shadow_replay(threads);
        if let Some(v) = violations.first() {
            diags.push(
                Diagnostic::new(
                    Code::ShadowDivergence,
                    Span::Global,
                    format!(
                        "static verdict is clean, but shadow replay at {threads} \
                         thread(s) observed {} violation(s), first: {v}",
                        violations.len()
                    ),
                )
                .with_help("the analyzer missed a hazard; treat the plan as unsound"),
            );
            break;
        }
    }
    diags
}

/// One audited hot-path source file, embedded at compile time so the
/// audit runs anywhere the verifier runs.
const AUDITED_SOURCES: [(&str, &str); 6] = [
    (
        "crates/tensor/src/par.rs",
        include_str!("../../tensor/src/par.rs"),
    ),
    (
        "crates/tensor/src/ops/conv.rs",
        include_str!("../../tensor/src/ops/conv.rs"),
    ),
    (
        "crates/tensor/src/ops/fused.rs",
        include_str!("../../tensor/src/ops/fused.rs"),
    ),
    (
        "crates/tensor/src/ops/pack.rs",
        include_str!("../../tensor/src/ops/pack.rs"),
    ),
    (
        "crates/tensor/src/ops/reference.rs",
        include_str!("../../tensor/src/ops/reference.rs"),
    ),
    (
        "crates/plan/src/lib.rs",
        include_str!("../../plan/src/lib.rs"),
    ),
];

/// How many lines above an `unsafe` token a `// SAFETY:` comment still
/// counts as documenting it.
const SAFETY_WINDOW: usize = 8;

/// Audits the embedded `vit-tensor`/`vit-plan` hot-path sources for
/// undocumented `unsafe` (`V057`) and unchecked indexing (`V058`).
pub fn audit_sources() -> Vec<Diagnostic> {
    AUDITED_SOURCES
        .iter()
        .flat_map(|(file, text)| audit_source(file, text))
        .collect()
}

/// Audits one source text (exposed for tests; [`audit_sources`] runs it
/// over the embedded hot-path files).
pub fn audit_source(file: &str, text: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let lines: Vec<&str> = text.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        let code = line.trim();
        if code.starts_with("//") {
            continue;
        }
        let span = || Span::Source {
            file: file.to_string(),
            line: i + 1,
        };
        if has_word(code, "unsafe") {
            let documented = lines[i.saturating_sub(SAFETY_WINDOW)..=i]
                .iter()
                .any(|l| l.trim_start().starts_with("// SAFETY:"));
            if !documented {
                diags.push(
                    Diagnostic::new(
                        Code::UndocumentedUnsafe,
                        span(),
                        "`unsafe` without a `// SAFETY:` justification".to_string(),
                    )
                    .with_help("state the invariant that makes this sound"),
                );
            }
        }
        if code.contains("get_unchecked") || code.contains("unwrap_unchecked") {
            diags.push(
                Diagnostic::new(
                    Code::UncheckedIndex,
                    span(),
                    "unchecked indexing in a hot path".to_string(),
                )
                .with_help("use checked indexing; the bounds check is not the bottleneck"),
            );
        }
    }
    diags
}

/// Whether `line` contains `word` delimited by non-identifier characters
/// (so `unsafe_flag` or a string mentioning it does not count).
fn has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    let mut from = 0;
    while let Some(pos) = line[from..].find(word) {
        let start = from + pos;
        let end = start + word.len();
        let left_ok = start == 0 || !is_ident(bytes[start - 1]);
        let right_ok = end == bytes.len() || !is_ident(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        from = end;
    }
    false
}

fn is_ident(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// What the `--exec-safety` detail mode prints per artifact: how much
/// geometry and liveness the pass actually proved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecSafetySummary {
    /// Plan records analyzed.
    pub records: usize,
    /// Records with a parallel (row-tiled or explicit) decomposition.
    pub tiled: usize,
    /// Chunk ranges proved disjoint and covering, summed over all
    /// sampled worker counts.
    pub chunks_proved: usize,
    /// Compile-time reclamation decisions audited.
    pub frees_audited: usize,
    /// Records declaring FP reassociation (tolerance-tier routed).
    pub reassociating: usize,
}

impl fmt::Display for ExecSafetySummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} records ({} tiled), {} chunks proved, {} frees audited, {} reassociating",
            self.records, self.tiled, self.chunks_proved, self.frees_audited, self.reassociating
        )
    }
}

/// Tallies what the static pass proves over `plan` (for `--exec-safety`).
pub fn exec_safety_summary(plan: &ExecPlan) -> ExecSafetySummary {
    let mut s = ExecSafetySummary {
        records: plan.records().len(),
        ..Default::default()
    };
    for rec in plan.records() {
        if !matches!(rec.contract, vit_plan::ExecContract::Sequential) {
            s.tiled += 1;
        }
        for width in WIDTHS {
            s.chunks_proved += rec.contract.chunk_ranges(rec.out, width).len();
        }
        s.frees_audited += rec.frees.len();
        if rec.contract.reassociates() {
            s.reassociating += 1;
        }
    }
    s
}
