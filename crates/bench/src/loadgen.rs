//! Seeded open-loop load generation for the serving experiments.
//!
//! Open-loop means arrivals are generated independently of how fast the
//! server drains them — the realistic overload regime, where a slow server
//! faces a growing queue instead of a politely waiting client. Every
//! generator here is a pure function of its seed, so fleet-scale sweeps
//! replay byte-identically.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vit_serve::{SimArrival, TenantId};

/// A seeded Poisson process: exponential inter-arrival gaps at `rate_hz`
/// mean arrivals per (virtual) second, until `duration` seconds. Every
/// request carries the same relative deadline `slack`.
pub fn poisson(rate_hz: f64, duration: f64, slack: f64, seed: u64) -> Vec<SimArrival> {
    assert!(
        rate_hz > 0.0 && duration > 0.0,
        "need positive rate and duration"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    loop {
        // Inverse-CDF exponential sample; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate_hz;
        if t >= duration {
            return arrivals;
        }
        arrivals.push(SimArrival::new(t, slack));
    }
}

/// A Poisson base load plus periodic bursts: every `burst_every` seconds,
/// `burst_size` extra requests arrive back-to-back — the flash-crowd shape
/// that stresses admission control and the bounded queue.
pub fn poisson_with_bursts(
    rate_hz: f64,
    duration: f64,
    slack: f64,
    burst_every: f64,
    burst_size: usize,
    seed: u64,
) -> Vec<SimArrival> {
    assert!(burst_every > 0.0, "need a positive burst period");
    let mut arrivals = poisson(rate_hz, duration, slack, seed);
    let mut t = burst_every;
    while t < duration {
        for _ in 0..burst_size {
            arrivals.push(SimArrival::new(t, slack));
        }
        t += burst_every;
    }
    arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
    arrivals
}

/// A diurnal (sinusoidal-rate) non-homogeneous Poisson process via
/// thinning: the instantaneous rate swings between `base_rate_hz *
/// (1 ± swing)` over `period` seconds, peaking mid-cycle. The mean rate
/// over a whole number of cycles is `base_rate_hz`, so a `load_x`
/// calibrated for [`poisson`] carries over while the peaks push the fleet
/// into its overload regime and the troughs let it drain.
pub fn diurnal(
    base_rate_hz: f64,
    swing: f64,
    period: f64,
    duration: f64,
    slack: f64,
    seed: u64,
) -> Vec<SimArrival> {
    assert!(
        (0.0..=1.0).contains(&swing),
        "swing is a fraction of the base rate"
    );
    assert!(period > 0.0, "need a positive diurnal period");
    let peak = base_rate_hz * (1.0 + swing);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    loop {
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / peak;
        if t >= duration {
            return arrivals;
        }
        // Thinning: keep the candidate with probability rate(t) / peak.
        let phase = (t / period) * std::f64::consts::TAU;
        let rate = base_rate_hz * (1.0 + swing * (phase - std::f64::consts::FRAC_PI_2).sin());
        let keep: f64 = rng.gen_range(0.0..1.0);
        if keep < rate / peak {
            arrivals.push(SimArrival::new(t, slack));
        }
    }
}

/// Tags each arrival with a tenant drawn from `weights` (one weight per
/// tenant id, starting at 0), deterministically from `seed`. Heavier
/// weights receive proportionally more of the trace.
pub fn assign_tenants(
    mut arrivals: Vec<SimArrival>,
    weights: &[f64],
    seed: u64,
) -> Vec<SimArrival> {
    assert!(!weights.is_empty(), "need at least one tenant weight");
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "tenant weights must sum positive");
    let mut rng = StdRng::seed_from_u64(seed);
    for a in &mut arrivals {
        let mut draw: f64 = rng.gen_range(0.0..total);
        let mut id = 0u32;
        for (i, w) in weights.iter().enumerate() {
            draw -= w;
            if draw < 0.0 {
                id = i as u32;
                break;
            }
        }
        a.tenant = TenantId(id);
    }
    arrivals
}

/// An adversarial two-tenant mix: tenant 0 offers a steady, well-behaved
/// Poisson load while tenant 1 floods the fleet with dense bursts —
/// `flood_size` back-to-back requests every `flood_every` seconds. Without
/// per-tenant quotas the flood monopolizes the bounded queue and starves
/// tenant 0; with them, the flood is shed at admission instead.
pub fn adversarial(
    steady_rate_hz: f64,
    duration: f64,
    slack: f64,
    flood_every: f64,
    flood_size: usize,
    seed: u64,
) -> Vec<SimArrival> {
    assert!(flood_every > 0.0, "need a positive flood period");
    let mut arrivals = poisson(steady_rate_hz, duration, slack, seed);
    let mut t = flood_every;
    while t < duration {
        for _ in 0..flood_size {
            arrivals.push(SimArrival::new(t, slack).with_tenant(TenantId(1)));
        }
        t += flood_every;
    }
    arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_roughly_at_rate() {
        let a = poisson(100.0, 10.0, 0.1, 42);
        let b = poisson(100.0, 10.0, 0.1, 42);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.time == y.time && x.slack == y.slack));
        // ~1000 expected; a 3-sigma band is ±~95.
        assert!((800..1200).contains(&a.len()), "got {}", a.len());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().all(|x| x.time < 10.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson(50.0, 5.0, 0.1, 1);
        let b = poisson(50.0, 5.0, 0.1, 2);
        assert!(a.first().map(|x| x.time) != b.first().map(|x| x.time));
    }

    #[test]
    fn bursts_add_sorted_extra_arrivals() {
        let base = poisson(10.0, 10.0, 0.2, 7);
        let bursty = poisson_with_bursts(10.0, 10.0, 0.2, 2.5, 8, 7);
        // Bursts at t = 2.5, 5.0, 7.5 add 3 * 8 arrivals.
        assert_eq!(bursty.len(), base.len() + 24);
        assert!(bursty.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(bursty.iter().filter(|a| a.time == 2.5).count(), 8);
    }

    #[test]
    fn diurnal_is_deterministic_and_peaks_mid_cycle() {
        let a = diurnal(200.0, 0.8, 20.0, 40.0, 0.1, 5);
        let b = diurnal(200.0, 0.8, 20.0, 40.0, 0.1, 5);
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.time == y.time));
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        // Mean over whole cycles tracks the base rate (loose 4-sigma band).
        assert!((7000..9000).contains(&a.len()), "got {}", a.len());
        // The peak half of each cycle must carry more arrivals than the
        // trough half: [0.25, 0.75) of a period vs the rest.
        let in_peak = |t: f64| {
            let frac = (t / 20.0).fract();
            (0.25..0.75).contains(&frac)
        };
        let peak = a.iter().filter(|x| in_peak(x.time)).count();
        assert!(
            peak * 2 > a.len() * 5 / 4,
            "peak half {} of {} is not dominant",
            peak,
            a.len()
        );
    }

    #[test]
    fn tenant_assignment_tracks_weights() {
        let a = assign_tenants(poisson(500.0, 10.0, 0.1, 3), &[3.0, 1.0], 9);
        let t0 = a.iter().filter(|x| x.tenant == TenantId(0)).count();
        let t1 = a.iter().filter(|x| x.tenant == TenantId(1)).count();
        assert_eq!(t0 + t1, a.len());
        // 75/25 split within a generous band.
        let share = t0 as f64 / a.len() as f64;
        assert!((0.70..0.80).contains(&share), "tenant0 share {share}");
        // Deterministic under the same seed.
        let b = assign_tenants(poisson(500.0, 10.0, 0.1, 3), &[3.0, 1.0], 9);
        assert!(a.iter().zip(&b).all(|(x, y)| x.tenant == y.tenant));
    }

    #[test]
    fn adversarial_floods_come_from_the_heavy_tenant() {
        let mix = adversarial(20.0, 10.0, 0.2, 2.0, 16, 11);
        let floods = mix.iter().filter(|a| a.tenant == TenantId(1)).count();
        // Floods at t = 2, 4, 6, 8.
        assert_eq!(floods, 4 * 16);
        assert!(mix
            .iter()
            .filter(|a| a.tenant == TenantId(0))
            .all(|a| a.time >= 0.0));
        assert!(mix.windows(2).all(|w| w[0].time <= w[1].time));
    }
}
