//! Deterministic discrete-event simulation of the serving loop.
//!
//! Shares the scheduling semantics of the threaded [`crate::Server`] —
//! weighted-fair multi-tenant EDF dispatch, admission control at arrival
//! and at dispatch, a bounded queue, continuous batching — but advances a
//! *virtual* clock, so a load sweep is exactly reproducible under a fixed
//! seed and independent of the host machine. Service times are the LUT's
//! resource estimates scaled by a fixed seconds-per-unit rate; inference
//! outputs are not materialized (the metrics only need the selected
//! configuration and its accuracy estimate), which keeps sweeping millions
//! of requests over hundreds of operating points cheap.
//!
//! Fleet scale: `replicas` simulates that many identical worker groups,
//! each with its own queue and `workers` workers; arrivals are routed
//! round-robin (by arrival order), modeling a stateless load balancer.

use crate::config::TenantSpec;
use crate::fair::{CoalescePop, DispatchPushError, DispatchQueue};
use crate::metrics::ServerMetrics;
use crate::policy::{admissible, budget_for, RecoveryPolicy, SchedulePolicy};
use crate::request::{
    FailureReason, FailureRecord, Outcome, RequestRecord, RequestTicket, ShedReason, ShedRecord,
    TenantId,
};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use vit_drt::EngineCore;
use vit_fault::{FaultKind, FaultPlan};

/// One request arrival in virtual time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimArrival {
    /// Arrival (submission) time in virtual seconds.
    pub time: f64,
    /// Relative deadline: the request must finish by `time + slack`.
    pub slack: f64,
    /// The submitting tenant (default tenant when untagged).
    pub tenant: TenantId,
}

impl SimArrival {
    /// An arrival from the default tenant.
    pub fn new(time: f64, slack: f64) -> Self {
        SimArrival {
            time,
            slack,
            tenant: TenantId::default(),
        }
    }

    /// Re-tags the arrival with an explicit tenant.
    #[must_use]
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Parallel workers per replica.
    pub workers: usize,
    /// Dispatch queue capacity per replica; arrivals beyond it are shed.
    pub queue_depth: usize,
    /// Scheduling policy.
    pub policy: SchedulePolicy,
    /// Virtual seconds one LUT resource unit takes to execute.
    pub secs_per_unit: f64,
    /// Deterministic fault injection plan (`None` = clean runs). Draws are
    /// keyed by the request's admission sequence number and attempt, so a
    /// simulated chaos run is exactly reproducible.
    pub fault: Option<FaultPlan>,
    /// What a worker does when an attempt faults.
    pub recovery: RecoveryPolicy,
    /// Watchdog allowance as a multiple of the selected entry's expected
    /// service time. Unlike the threaded server (which can only observe an
    /// overrun after the fact), the simulator models the real abort: a
    /// stalled attempt is killed at the allowance and handed to recovery.
    pub watchdog_grace: f64,
    /// Largest number of same-config requests one engine pass may serve
    /// (1 = no batching). Like the threaded server, batching is disabled
    /// while a fault plan is armed.
    pub max_batch: usize,
    /// Marginal cost of each extra batched request, as a fraction of the
    /// single-request service time: a batch of `N` takes
    /// `expected × (1 + (N−1) × batch_marginal)` virtual seconds. The
    /// default 0.25 models the amortized-weight-streaming regime of the
    /// batch-N kernels.
    pub batch_marginal: f64,
    /// Identical worker-group replicas behind a round-robin load balancer.
    pub replicas: usize,
    /// Per-tenant quotas and fair-share weights (empty = single tenant).
    pub tenants: Vec<TenantSpec>,
}

impl SimConfig {
    /// A clean (fault-free) single-replica simulation configuration with
    /// the default recovery policy and watchdog grace — the common case;
    /// chaos runs layer [`SimConfig::with_fault`] on top, fleet runs
    /// [`SimConfig::with_replicas`] and friends.
    pub fn new(
        workers: usize,
        queue_depth: usize,
        policy: SchedulePolicy,
        secs_per_unit: f64,
    ) -> Self {
        SimConfig {
            workers,
            queue_depth,
            policy,
            secs_per_unit,
            fault: None,
            recovery: RecoveryPolicy::default(),
            watchdog_grace: 4.0,
            max_batch: 1,
            batch_marginal: 0.25,
            replicas: 1,
            tenants: Vec::new(),
        }
    }

    /// Arms fault injection.
    #[must_use]
    pub fn with_fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the recovery policy.
    #[must_use]
    pub fn with_recovery(mut self, recovery: RecoveryPolicy) -> Self {
        self.recovery = recovery;
        self
    }

    /// Enables continuous batching up to `max_batch` requests per pass.
    #[must_use]
    pub fn with_batching(mut self, max_batch: usize) -> Self {
        self.max_batch = max_batch;
        self
    }

    /// Sets the marginal per-request cost of batched service.
    #[must_use]
    pub fn with_batch_marginal(mut self, marginal: f64) -> Self {
        self.batch_marginal = marginal;
        self
    }

    /// Simulates `replicas` identical worker groups behind round-robin
    /// load balancing.
    #[must_use]
    pub fn with_replicas(mut self, replicas: usize) -> Self {
        self.replicas = replicas;
        self
    }

    /// Sets the per-tenant quota/weight specs.
    #[must_use]
    pub fn with_tenants(mut self, tenants: Vec<TenantSpec>) -> Self {
        self.tenants = tenants;
        self
    }
}

/// Fraction of the expected service time a crashed attempt burns before
/// dying (a crash is detected mid-flight, not at the end of service).
const CRASH_BURN: f64 = 0.5;
/// Fraction of the expected service time a failed plan replay burns
/// before the executor reports it (replay validation fails fast).
const REPLAY_BURN: f64 = 0.05;

/// Totally ordered f64 for use as a heap key (virtual times are finite).
#[derive(Debug, Clone, Copy, PartialEq)]
struct OrdF64(f64);

impl Eq for OrdF64 {}

impl PartialOrd for OrdF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[derive(Debug, Clone, Copy)]
struct QueuedReq {
    arrival: f64,
    deadline: f64,
    tenant: TenantId,
}

/// Runs the simulation over `arrivals` (any order; sorted internally by
/// arrival time, stably) and returns aggregate metrics in virtual seconds.
///
/// # Panics
///
/// Panics when `config.workers`, `config.queue_depth`, `config.max_batch`,
/// or `config.replicas` is zero, or when `config.secs_per_unit` is not
/// positive, or when `config.batch_marginal` is negative.
pub fn simulate(core: &EngineCore, config: &SimConfig, arrivals: &[SimArrival]) -> ServerMetrics {
    ServerMetrics::from_outcomes(&simulate_outcomes(core, config, arrivals))
}

/// Like [`simulate`], but returns the raw per-request [`Outcome`]s instead
/// of aggregating them — callers that need distributions the aggregate
/// metrics do not carry (e.g. which configurations the *degraded*
/// completions ran, for fidelity measurement) post-process these.
///
/// # Panics
///
/// Same contract as [`simulate`].
pub fn simulate_outcomes(
    core: &EngineCore,
    config: &SimConfig,
    arrivals: &[SimArrival],
) -> Vec<Outcome> {
    assert!(config.workers > 0, "simulation needs at least one worker");
    assert!(config.queue_depth > 0, "simulation needs queue capacity");
    assert!(
        config.secs_per_unit > 0.0,
        "seconds-per-unit must be positive"
    );
    assert!(config.max_batch > 0, "max batch must be at least 1");
    assert!(
        config.batch_marginal >= 0.0,
        "batch marginal cost cannot be negative"
    );
    assert!(config.replicas > 0, "simulation needs at least one replica");

    let mut sorted: Vec<SimArrival> = arrivals.to_vec();
    sorted.sort_by(|a, b| a.time.total_cmp(&b.time));

    if config.replicas == 1 {
        return simulate_replica(core, config, &sorted);
    }
    // Round-robin load balancing over identical replicas: arrival i (in
    // time order) goes to replica i mod replicas. Each replica is an
    // independent queue + worker group; outcomes concatenate (aggregate
    // metrics are order-insensitive).
    let mut outcomes = Vec::with_capacity(sorted.len());
    for r in 0..config.replicas {
        let share: Vec<SimArrival> = sorted
            .iter()
            .enumerate()
            .filter(|(i, _)| i % config.replicas == r)
            .map(|(_, a)| *a)
            .collect();
        outcomes.extend(simulate_replica(core, config, &share));
    }
    outcomes
}

/// Simulates one replica over its (time-sorted) share of the arrivals.
fn simulate_replica(core: &EngineCore, config: &SimConfig, sorted: &[SimArrival]) -> Vec<Outcome> {
    let spu = config.secs_per_unit;
    let min_cost = core.min_resource();
    let fault_plan = config.fault.filter(|p| p.is_active());
    // As in the threaded server: batching never mixes with an armed fault
    // plan, keeping per-request fault draws replayable.
    let batching = config.max_batch > 1 && fault_plan.is_none();

    // Weighted-fair multi-tenant EDF queue of admitted, not-yet-dispatched
    // requests — the same discipline the threaded server dispatches with.
    // Items are indices into `queued`; the index doubles as the request's
    // deterministic fault-draw identity and ticket.
    let mut queue: DispatchQueue<OrdF64, u64> =
        DispatchQueue::bounded(config.queue_depth, &config.tenants);
    let mut queued: Vec<QueuedReq> = Vec::new();
    // When each worker becomes free, as a min-heap.
    let mut workers: BinaryHeap<Reverse<OrdF64>> = BinaryHeap::new();
    for _ in 0..config.workers {
        workers.push(Reverse(OrdF64(0.0)));
    }

    let mut outcomes: Vec<Outcome> = Vec::with_capacity(sorted.len());
    let mut next_arrival = 0usize;

    // Admission control at arrival time: slack below the cheapest path, a
    // full queue, or an exhausted tenant quota sheds immediately.
    let admit = |a: &SimArrival,
                 queue: &mut DispatchQueue<OrdF64, u64>,
                 queued: &mut Vec<QueuedReq>,
                 outcomes: &mut Vec<Outcome>| {
        if !admissible(a.slack / spu, min_cost) {
            outcomes.push(Outcome::Shed(ShedRecord::at_admission(
                ShedReason::SlackBelowCheapest,
                a.tenant,
            )));
            return;
        }
        let seq = queued.len() as u64;
        let deadline = a.time + a.slack;
        match queue.try_push(a.tenant, OrdF64(deadline), seq) {
            Ok(()) => queued.push(QueuedReq {
                arrival: a.time,
                deadline,
                tenant: a.tenant,
            }),
            Err(e) => {
                let reason = match e {
                    DispatchPushError::OverQuota => ShedReason::OverQuota,
                    DispatchPushError::Full | DispatchPushError::Closed => ShedReason::QueueFull,
                };
                // `queued` was not extended, so the seq is re-used by the
                // next admitted request — sheds never consume fault-draw
                // identities, exactly as before tenancy existed.
                outcomes.push(Outcome::Shed(ShedRecord::at_admission(reason, a.tenant)));
            }
        }
    };

    loop {
        let free_at = workers.peek().expect("worker heap never empties").0 .0;
        // Everything that has arrived by the time a worker frees must be
        // visible to that dispatch decision (EDF is over *queued* work).
        while next_arrival < sorted.len() && sorted[next_arrival].time <= free_at {
            admit(
                &sorted[next_arrival],
                &mut queue,
                &mut queued,
                &mut outcomes,
            );
            next_arrival += 1;
        }
        if queue.is_empty() {
            if next_arrival >= sorted.len() {
                break; // drained
            }
            // Idle: jump to the next arrival.
            admit(
                &sorted[next_arrival],
                &mut queue,
                &mut queued,
                &mut outcomes,
            );
            next_arrival += 1;
            continue;
        }

        // Dispatch the weighted-fair-EDF head on the earliest free worker.
        let (_, _, seq) = queue.pop().expect("checked non-empty");
        let req = queued[seq as usize];
        workers.pop();
        let start = free_at.max(req.arrival);

        if batching {
            let slack_units = (req.deadline - start) / spu;
            if admissible(slack_units, min_cost) {
                // Coalesce: followers join while the next-up request (in
                // fair-EDF order — never skipped over) is admissible and
                // resolves to the leader's configuration. Virtual time
                // does not advance while the batch forms (a zero-cost
                // batch window over everything already queued).
                let budget = budget_for(config.policy, core, slack_units);
                let (entry, _fits) = core.select(budget);
                let mut members: Vec<u64> = vec![seq];
                let mut earliest = req.deadline;
                while members.len() < config.max_batch {
                    // Service time if one more member joins. A batch must
                    // never turn a met deadline into a miss: everyone
                    // shares the batch finish instant, so the batch only
                    // grows while that projected finish still meets the
                    // earliest deadline on board — and the candidate's own.
                    let grown =
                        entry.resource * spu * (1.0 + members.len() as f64 * config.batch_marginal);
                    if start + grown > earliest {
                        break;
                    }
                    let picked = queue.pop_if(|&s| {
                        let cand = queued[s as usize];
                        let su = (cand.deadline - start) / spu;
                        start + grown <= cand.deadline
                            && admissible(su, min_cost)
                            && core.select(budget_for(config.policy, core, su)).0.config
                                == entry.config
                    });
                    match picked {
                        CoalescePop::Item((_, _, s)) => {
                            earliest = earliest.min(queued[s as usize].deadline);
                            members.push(s);
                        }
                        _ => break,
                    }
                }
                let n = members.len();
                let service =
                    entry.resource * spu * (1.0 + (n as f64 - 1.0) * config.batch_marginal);
                let finish = start + service;
                workers.push(Reverse(OrdF64(finish)));
                for &s in &members {
                    let m = queued[s as usize];
                    outcomes.push(Outcome::Completed(RequestRecord {
                        latency: finish - m.arrival,
                        queue_wait: start - m.arrival,
                        met_deadline: finish <= m.deadline,
                        accuracy: entry.norm_miou,
                        config: entry.config,
                        retries: 0,
                        faults_seen: 0,
                        tenant: m.tenant,
                        ticket: Some(RequestTicket(s)),
                        batch_size: n as u32,
                    }));
                }
                continue;
            }
            // Hopeless leader: fall through to the per-request loop, which
            // sheds it at dispatch.
        }

        // Per-attempt recovery loop mirroring the threaded worker: each
        // attempt re-checks admissibility against the time already burned
        // and re-selects against the *remaining* slack, so a retry
        // degrades to a cheaper configuration by construction.
        let mut t = start;
        let mut attempt: u32 = 0;
        let mut faults_seen: u32 = 0;
        let mut interpret_fallback = false;
        let mut last_reason = FailureReason::Engine;
        loop {
            let slack_units = (req.deadline - t) / spu;
            if !admissible(slack_units, min_cost) {
                if attempt == 0 {
                    // Slack expired while waiting: shed at dispatch,
                    // worker stays free at the same instant.
                    workers.push(Reverse(OrdF64(free_at)));
                    outcomes.push(Outcome::Shed(ShedRecord {
                        reason: ShedReason::SlackExhausted,
                        tenant: req.tenant,
                        ticket: Some(RequestTicket(seq)),
                    }));
                } else {
                    // Slack ran out mid-recovery: the fault cost this
                    // request its deadline, and the worker its time.
                    workers.push(Reverse(OrdF64(t)));
                    outcomes.push(Outcome::Failed(FailureRecord {
                        reason: last_reason,
                        retries: attempt,
                        faults_seen,
                        tenant: req.tenant,
                        ticket: Some(RequestTicket(seq)),
                    }));
                }
                break;
            }
            let budget = budget_for(config.policy, core, slack_units);
            let (entry, _fits) = core.select(budget);
            let expected = entry.resource * spu;

            let drawn = match fault_plan.and_then(|p| p.decide(seq, attempt)) {
                // Replay faults stop arising once recovery fell back to
                // the interpreting backend.
                Some(FaultKind::PlanReplay) if interpret_fallback => None,
                d => d,
            };
            let (burned, result) = match drawn {
                Some(FaultKind::Crash) => (CRASH_BURN * expected, Err(FailureReason::Crash)),
                // Corruption runs to completion; the output guard catches
                // it there, so a full service time is burned.
                Some(FaultKind::BitFlip) => (expected, Err(FailureReason::GuardTripped)),
                Some(FaultKind::Stall) => {
                    let factor = fault_plan.expect("drawn implies a plan").stall_factor;
                    let actual = expected * factor.max(1.0);
                    let allowance = expected * config.watchdog_grace;
                    if actual > allowance {
                        // The watchdog aborts the stalled attempt at its
                        // allowance instead of letting it run out.
                        (allowance, Err(FailureReason::Watchdog))
                    } else {
                        (actual, Ok(()))
                    }
                }
                Some(FaultKind::PlanReplay) => {
                    (REPLAY_BURN * expected, Err(FailureReason::PlanReplay))
                }
                // No fault (or an unknown future kind): clean service.
                _ => (expected, Ok(())),
            };
            match result {
                Ok(()) => {
                    let finish = t + burned;
                    workers.push(Reverse(OrdF64(finish)));
                    outcomes.push(Outcome::Completed(RequestRecord {
                        latency: finish - req.arrival,
                        queue_wait: start - req.arrival,
                        met_deadline: finish <= req.deadline,
                        accuracy: entry.norm_miou,
                        config: entry.config,
                        retries: attempt,
                        faults_seen,
                        tenant: req.tenant,
                        ticket: Some(RequestTicket(seq)),
                        batch_size: 1,
                    }));
                    break;
                }
                Err(reason) => {
                    t += burned;
                    faults_seen += 1;
                    last_reason = reason;
                    if reason == FailureReason::PlanReplay {
                        interpret_fallback = true;
                    }
                    if attempt >= config.recovery.max_retries() {
                        workers.push(Reverse(OrdF64(t)));
                        outcomes.push(Outcome::Failed(FailureRecord {
                            reason,
                            retries: attempt,
                            faults_seen,
                            tenant: req.tenant,
                            ticket: Some(RequestTicket(seq)),
                        }));
                        break;
                    }
                    attempt += 1;
                }
            }
        }
    }

    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_drt::{EngineCore, EngineFamily, Lut};
    use vit_models::{SegFormerDynamic, SegFormerVariant};
    use vit_resilience::{DynConfig, TradeoffPoint};

    /// A tiny synthetic 3-row LUT: costs 1/2/4 units, accuracies
    /// 0.6/0.85/1.0.
    fn test_core() -> EngineCore {
        let point = |r: f64, a: f64| TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
                &SegFormerVariant::b0(),
                [1, 1, 1, 1],
                ((r * 64.0) as usize).max(4),
            )),
            resource: r,
            norm_resource: r / 4.0,
            norm_miou: a,
        };
        let lut = Lut::from_points(
            "sim test",
            &[point(1.0, 0.6), point(2.0, 0.85), point(4.0, 1.0)],
        );
        EngineCore::new(
            EngineFamily::SegFormer(SegFormerVariant::b0()),
            150,
            (64, 64),
            lut,
        )
        .unwrap()
    }

    fn uniform_arrivals(n: usize, gap: f64, slack: f64) -> Vec<SimArrival> {
        (0..n)
            .map(|i| SimArrival::new(i as f64 * gap, slack))
            .collect()
    }

    #[test]
    fn underload_runs_full_model_on_time() {
        let core = test_core();
        let m = simulate(
            &core,
            &SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0),
            // One arrival every 4s on 2 workers; service <= 4s: no queueing.
            &uniform_arrivals(20, 4.0, 8.0),
        );
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.shed(), 0);
        assert_eq!(m.deadline_misses, 0);
        // Plenty of slack: every request runs the full (1.0) model.
        assert!((m.mean_delivered_accuracy - 1.0).abs() < 1e-12);
        assert_eq!(m.config_histogram.len(), 1);
    }

    #[test]
    fn overload_degrades_accuracy_instead_of_missing() {
        let core = test_core();
        let cfg = |policy| SimConfig::new(1, 8, policy, 1.0);
        // Offered load 2x capacity of the full model (arrival every 2s,
        // full service 4s), with slack that fits the full model only when
        // the queue is empty.
        let arrivals = uniform_arrivals(60, 2.0, 5.0);
        let drt = simulate(&core, &cfg(SchedulePolicy::DrtDynamic), &arrivals);
        let stat = simulate(&core, &cfg(SchedulePolicy::static_full()), &arrivals);
        assert!(drt.accounts_for_all_submissions());
        assert!(stat.accounts_for_all_submissions());
        assert!(
            drt.deadline_miss_rate < stat.deadline_miss_rate,
            "DRT {} vs static {}",
            drt.deadline_miss_rate,
            stat.deadline_miss_rate
        );
        assert!(drt.mean_delivered_accuracy > stat.mean_delivered_accuracy);
        // DRT adapts: more than one configuration gets used.
        assert!(drt.config_histogram.len() > 1);
    }

    #[test]
    fn simulation_is_deterministic() {
        let core = test_core();
        let cfg = SimConfig::new(3, 8, SchedulePolicy::DrtDynamic, 0.01);
        let arrivals = uniform_arrivals(100, 0.013, 0.07);
        let a = simulate(&core, &cfg, &arrivals);
        let b = simulate(&core, &cfg, &arrivals);
        assert_eq!(a.submitted, b.submitted);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.deadline_misses, b.deadline_misses);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.config_histogram, b.config_histogram);
    }

    #[test]
    fn chaos_is_deterministic_and_conserves_requests() {
        let core = test_core();
        let plan = FaultPlan {
            seed: 7,
            crash_rate: 0.1,
            bitflip_rate: 0.08,
            stall_rate: 0.08,
            stall_factor: 6.0,
            replay_rate: 0.04,
        };
        let cfg = SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0).with_fault(plan);
        let arrivals = uniform_arrivals(200, 2.1, 9.0);
        let a = simulate(&core, &cfg, &arrivals);
        let b = simulate(&core, &cfg, &arrivals);
        assert!(a.accounts_for_all_submissions());
        assert!(a.faults_seen > 0, "rates this high must draw faults");
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.fault_failures, b.fault_failures);
        assert_eq!(a.faults_seen, b.faults_seen);
        assert_eq!(a.retries, b.retries);
        assert_eq!(a.p99_latency, b.p99_latency);
        assert_eq!(a.failure_histogram, b.failure_histogram);
    }

    #[test]
    fn degraded_retry_beats_fail_fast_on_goodput_under_faults() {
        let core = test_core();
        let plan = FaultPlan {
            seed: 11,
            crash_rate: 0.15,
            bitflip_rate: 0.10,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 0.0,
        };
        let arrivals = uniform_arrivals(300, 2.5, 10.0);
        let cfg = |rec| {
            SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0)
                .with_fault(plan)
                .with_recovery(rec)
        };
        let healing = simulate(
            &core,
            &cfg(RecoveryPolicy::DegradedRetry { max_retries: 2 }),
            &arrivals,
        );
        let brittle = simulate(&core, &cfg(RecoveryPolicy::FailFast), &arrivals);
        assert!(healing.accounts_for_all_submissions());
        assert!(brittle.accounts_for_all_submissions());
        assert!(
            healing.goodput > brittle.goodput,
            "degraded retry {} vs fail fast {}",
            healing.goodput,
            brittle.goodput
        );
        assert!(healing.degraded_completions > 0);
        assert_eq!(brittle.retries, 0, "fail fast never retries");
    }

    #[test]
    fn watchdog_aborts_hopeless_stalls() {
        let core = test_core();
        // Every request stalls 10x; grace 4x means every first attempt is
        // aborted by the watchdog at 4x expected.
        let plan = FaultPlan {
            seed: 3,
            crash_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 1.0,
            stall_factor: 10.0,
            replay_rate: 0.0,
        };
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0)
            .with_fault(plan)
            .with_recovery(RecoveryPolicy::FailFast);
        let m = simulate(&core, &cfg, &uniform_arrivals(10, 50.0, 40.0));
        assert_eq!(m.completed, 0);
        assert_eq!(m.fault_failures, 10);
        assert_eq!(m.failure_histogram, vec![(FailureReason::Watchdog, 10)]);
    }

    #[test]
    fn replay_failure_falls_back_to_interpreter() {
        let core = test_core();
        // Replay always fails; the fallback must land every request on a
        // successful (interpreted) retry.
        let plan = FaultPlan {
            seed: 5,
            crash_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 1.0,
        };
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0).with_fault(plan);
        let m = simulate(&core, &cfg, &uniform_arrivals(10, 50.0, 40.0));
        assert_eq!(m.completed, 10);
        assert_eq!(m.fault_failures, 0);
        assert_eq!(m.degraded_completions, 10, "every completion retried once");
        assert_eq!(m.faults_seen, 10);
    }

    #[test]
    fn impossible_slack_is_shed_at_admission() {
        let core = test_core();
        let m = simulate(
            &core,
            &SimConfig::new(1, 4, SchedulePolicy::DrtDynamic, 1.0),
            // Slack 0.5 < cheapest cost 1.0: nothing can ever be served.
            &uniform_arrivals(10, 1.0, 0.5),
        );
        assert_eq!(m.completed, 0);
        assert_eq!(m.shed_no_slack, 10);
        assert!(m.accounts_for_all_submissions());
    }

    #[test]
    fn batching_strictly_improves_goodput_at_overload() {
        let core = test_core();
        // Bursts of 8 simultaneous same-slack requests: one worker serving
        // them one-by-one (4s each at full) exhausts the later requests'
        // slack, while one batch-8 pass (4 × (1 + 7×0.25) = 11s) lands the
        // whole burst inside its 12s slack.
        let mut arrivals: Vec<SimArrival> = Vec::new();
        for burst in 0..20 {
            for _ in 0..8 {
                arrivals.push(SimArrival::new(burst as f64 * 12.0, 12.0));
            }
        }
        let unbatched = SimConfig::new(1, 16, SchedulePolicy::DrtDynamic, 1.0);
        let batched = unbatched.clone().with_batching(8);
        let mu = simulate(&core, &unbatched, &arrivals);
        let mb = simulate(&core, &batched, &arrivals);
        assert!(mu.accounts_for_all_submissions());
        assert!(mb.accounts_for_all_submissions());
        assert!(mb.batched_completions > 0, "overload must coalesce");
        assert!(
            mb.goodput > mu.goodput,
            "batched {} vs unbatched {}",
            mb.goodput,
            mu.goodput
        );
        // Every batch member shares one pass but keeps its own record.
        assert!(mb.mean_batch_size > 1.0);
    }

    #[test]
    fn batch_of_requests_share_config_and_finish_time() {
        let core = test_core();
        // Two workers idle at t=0; 4 identical-slack arrivals at t=0: the
        // first worker batches what is queued when it dispatches.
        let arrivals: Vec<SimArrival> = (0..4).map(|_| SimArrival::new(0.0, 20.0)).collect();
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0).with_batching(4);
        let outcomes = simulate_outcomes(&core, &cfg, &arrivals);
        let records: Vec<_> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Completed(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), 4);
        assert!(records.iter().all(|r| r.batch_size == 4));
        assert!(records.iter().all(|r| r.config == records[0].config));
        assert!(records.iter().all(|r| r.met_deadline));
        // Same pass: same finish instant, hence identical latencies here
        // (all arrived together).
        assert!(records.iter().all(|r| r.latency == records[0].latency));
    }

    #[test]
    fn mixed_config_queue_never_coalesces_across_configs() {
        let core = test_core();
        // Both arrive together and both are admissible, but their slacks
        // resolve to different LUT rows: 3 units buys the mid (2-unit)
        // path, 30 units the full (4-unit) path. The coalescing predicate
        // must refuse to pull the full-config request into the mid-config
        // leader's batch even though a slot is free.
        let arrivals = vec![SimArrival::new(0.0, 3.0), SimArrival::new(0.0, 30.0)];
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0).with_batching(8);
        let outcomes = simulate_outcomes(&core, &cfg, &arrivals);
        let records: Vec<_> = outcomes
            .iter()
            .filter_map(|o| match o {
                Outcome::Completed(r) => Some(r),
                _ => None,
            })
            .collect();
        assert_eq!(records.len(), 2);
        assert!(
            records.iter().all(|r| r.batch_size == 1),
            "different configs must serve as singles, not one mixed batch"
        );
        assert_ne!(
            records[0].config, records[1].config,
            "the two slacks must really select different paths"
        );
        let m = ServerMetrics::from_outcomes(&outcomes);
        assert_eq!(m.batched_completions, 0);
        assert_eq!(m.config_histogram.len(), 2);
    }

    #[test]
    fn chaos_disables_batching_for_replay_determinism() {
        let core = test_core();
        let plan = FaultPlan {
            seed: 9,
            crash_rate: 0.2,
            bitflip_rate: 0.0,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 0.0,
        };
        let cfg = SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0)
            .with_fault(plan)
            .with_batching(8);
        let m = simulate(&core, &cfg, &uniform_arrivals(100, 2.1, 9.0));
        assert!(m.accounts_for_all_submissions());
        assert_eq!(m.batched_completions, 0, "armed faults must not batch");
        // And the run matches the batching-free config exactly.
        let plain = SimConfig::new(2, 16, SchedulePolicy::DrtDynamic, 1.0).with_fault(plan);
        let p = simulate(&core, &plain, &uniform_arrivals(100, 2.1, 9.0));
        assert_eq!(m.completed, p.completed);
        assert_eq!(m.faults_seen, p.faults_seen);
        assert_eq!(m.p99_latency, p.p99_latency);
    }

    #[test]
    fn replicas_scale_capacity_and_stay_deterministic() {
        let core = test_core();
        let arrivals = uniform_arrivals(400, 0.7, 6.0);
        let one = SimConfig::new(1, 16, SchedulePolicy::DrtDynamic, 1.0);
        let four = one.clone().with_replicas(4);
        let m1 = simulate(&core, &one, &arrivals);
        let m4 = simulate(&core, &four, &arrivals);
        assert!(m1.accounts_for_all_submissions());
        assert!(m4.accounts_for_all_submissions());
        assert_eq!(m4.submitted, 400, "replicas conserve every arrival");
        assert!(
            m4.goodput > m1.goodput,
            "4 replicas {} vs 1 replica {}",
            m4.goodput,
            m1.goodput
        );
        let again = simulate(&core, &four, &arrivals);
        assert_eq!(m4.completed, again.completed);
        assert_eq!(m4.p99_latency, again.p99_latency);
    }

    #[test]
    fn tenant_quota_protects_the_light_tenant() {
        let core = test_core();
        let heavy = TenantId(1);
        let light = TenantId(2);
        // Tenant 1 floods (10x the rate of tenant 2) into a shared queue;
        // its quota caps it at half the queue, so tenant 2 keeps serving.
        let mut arrivals: Vec<SimArrival> = Vec::new();
        for i in 0..400 {
            arrivals.push(SimArrival::new(i as f64 * 0.4, 8.0).with_tenant(heavy));
        }
        for i in 0..40 {
            arrivals.push(SimArrival::new(i as f64 * 4.0, 8.0).with_tenant(light));
        }
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0).with_tenants(vec![
            TenantSpec::new(heavy).with_queue_share(0.5),
            TenantSpec::new(light).with_queue_share(0.5),
        ]);
        let m = simulate(&core, &cfg, &arrivals);
        assert!(m.accounts_for_all_submissions());
        assert!(m.shed_over_quota > 0, "the flood must hit the quota");
        let mh = *m.tenant(heavy).unwrap();
        let ml = *m.tenant(light).unwrap();
        // Each tenant's rates partition its own submissions.
        assert!((mh.goodput + mh.miss_rate + mh.shed_rate - 1.0).abs() < 1e-9);
        assert!((ml.goodput + ml.miss_rate + ml.shed_rate - 1.0).abs() < 1e-9);
        // Only the flooding tenant pays the quota sheds, and the light
        // tenant keeps materially better goodput than the flooder.
        assert_eq!(ml.shed_over_quota, 0);
        assert!(mh.shed_over_quota > 0);
        assert!(
            ml.goodput > mh.goodput,
            "light {} vs heavy {}",
            ml.goodput,
            mh.goodput
        );
    }
}
