//! Event sinks: where recorded events go.

use crate::event::{EventKind, TraceEvent};
use crate::export::{Agg, FlameSummary};
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (the first call wins the
/// epoch). All sinks share this clock so events from different layers land
/// on one timeline.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static NEXT_THREAD_ORD: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_ORD: u64 = NEXT_THREAD_ORD.fetch_add(1, Ordering::Relaxed);
}

/// A small, stable ordinal for the calling OS thread (0, 1, 2, … in first-
/// use order). Used as the `tid` of recorded events — compact and readable
/// in chrome://tracing, unlike the opaque [`std::thread::ThreadId`].
pub fn thread_ord() -> u64 {
    THREAD_ORD.with(|o| *o)
}

/// Consumes typed trace events.
///
/// The contract that makes tracing free when disabled: recorders must gate
/// *all* trace work — clock reads, string clones, event construction — on
/// [`TraceSink::enabled`]. With a [`NullSink`] the entire hot-path cost is
/// therefore one virtual call returning a constant `false` per would-be
/// event, which the branch predictor eats (`repro bench --trace` pins
/// this: the NullSink median must stay within 2% run-to-run).
///
/// Sinks assign each event its logical sequence number at record time, so
/// a sink's event stream always satisfies [`crate::validate`]'s uniqueness
/// rule.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Whether this sink records anything. Recorders skip all tracing work
    /// when this is false.
    fn enabled(&self) -> bool;

    /// Records one event. Implementations stamp `seq` and the calling
    /// thread's ordinal.
    fn record(&self, kind: EventKind);

    /// [`now_ns`] when enabled, `0` otherwise — the one-liner recorders
    /// use to open a span without branching twice.
    fn timestamp(&self) -> u64 {
        if self.enabled() {
            now_ns()
        } else {
            0
        }
    }
}

/// The disabled sink: `enabled()` is `false` and `record` is a no-op.
///
/// This is the default sink of every `RunContext`, so untraced inference
/// pays nothing beyond the `enabled()` check.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&self, _kind: EventKind) {}
}

static NULL_SINK: OnceLock<Arc<NullSink>> = OnceLock::new();

/// The shared process-wide [`NullSink`] handle — what
/// `RunContext::default()` uses, without allocating per context.
pub fn null_sink() -> Arc<dyn TraceSink> {
    NULL_SINK.get_or_init(|| Arc::new(NullSink)).clone()
}

struct Ring {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded in-memory event buffer: keeps the most recent `capacity`
/// events, dropping the oldest (and counting the drops) beyond that.
///
/// The lock is held only for the O(1) push, so concurrent recorders
/// contend briefly; sequence numbers are assigned under the same lock and
/// therefore increase in buffer order.
pub struct RingBufferSink {
    ring: Mutex<Ring>,
    capacity: usize,
}

impl fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ring = self.lock();
        f.debug_struct("RingBufferSink")
            .field("capacity", &self.capacity)
            .field("len", &ring.events.len())
            .field("dropped", &ring.dropped)
            .finish()
    }
}

impl RingBufferSink {
    /// Creates a sink retaining at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            ring: Mutex::new(Ring {
                events: VecDeque::new(),
                next_seq: 0,
                dropped: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    fn lock(&self) -> MutexGuard<'_, Ring> {
        self.ring.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A snapshot of the buffered events, in record order.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.lock().events.iter().cloned().collect()
    }

    /// Drains and returns the buffered events, in record order.
    pub fn take(&self) -> Vec<TraceEvent> {
        self.lock().events.drain(..).collect()
    }

    /// Number of currently buffered events.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted because the buffer was full. A non-zero value means
    /// the trace is a suffix of the run, not the whole run.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }
}

impl TraceSink for RingBufferSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, kind: EventKind) {
        let thread = thread_ord();
        let mut ring = self.lock();
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent { seq, thread, kind });
    }
}

#[derive(Default)]
struct Stats {
    next_seq: u64,
    per_op: HashMap<String, Agg>,
    per_node: HashMap<String, Agg>,
    phases: HashMap<&'static str, Agg>,
    counters: HashMap<String, u64>,
    sched_samples: u64,
    sched_latency_ns: u64,
    sched_max_ready_depth: u64,
}

/// An aggregating sink: folds every event into per-op-kind, per-node,
/// per-phase, and counter totals online, retaining O(distinct keys) memory
/// regardless of run length — the sink for always-on production metrics.
#[derive(Default)]
pub struct StatsSink {
    stats: Mutex<Stats>,
}

impl fmt::Debug for StatsSink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let st = self.lock();
        f.debug_struct("StatsSink")
            .field("events", &st.next_seq)
            .field("distinct_ops", &st.per_op.len())
            .finish()
    }
}

impl StatsSink {
    /// Creates an empty aggregating sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> MutexGuard<'_, Stats> {
        self.stats.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Total events recorded so far.
    pub fn events_recorded(&self) -> u64 {
        self.lock().next_seq
    }

    /// Current value of a named counter (0 when never sampled).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// Mean wavefront spawn→start latency in nanoseconds, and the maximum
    /// observed ready-set depth. Zeros when no scheduler events arrived.
    pub fn sched_stats(&self) -> (f64, u64) {
        let st = self.lock();
        let mean = if st.sched_samples == 0 {
            0.0
        } else {
            st.sched_latency_ns as f64 / st.sched_samples as f64
        };
        (mean, st.sched_max_ready_depth)
    }

    /// The aggregated flame summary: per-op-kind totals plus the `top_n`
    /// nodes by accumulated self time.
    pub fn summary(&self, top_n: usize) -> FlameSummary {
        let st = self.lock();
        FlameSummary::from_aggregates(&st.per_op, &st.per_node, &st.phases, &st.counters, top_n)
    }
}

impl TraceSink for StatsSink {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&self, kind: EventKind) {
        let mut st = self.lock();
        st.next_seq += 1;
        match kind {
            EventKind::Node {
                name,
                op,
                start_ns,
                end_ns,
                flops,
                bytes,
            } => {
                let dur = end_ns.saturating_sub(start_ns);
                st.per_op.entry(op).or_default().add(dur, flops, bytes);
                st.per_node.entry(name).or_default().add(dur, flops, bytes);
            }
            EventKind::Phase {
                phase,
                start_ns,
                end_ns,
                ..
            } => {
                st.phases.entry(phase.name()).or_default().add(
                    end_ns.saturating_sub(start_ns),
                    0,
                    0,
                );
            }
            EventKind::Sched {
                spawn_ns,
                start_ns,
                ready_depth,
                ..
            } => {
                st.sched_samples += 1;
                st.sched_latency_ns += start_ns.saturating_sub(spawn_ns);
                st.sched_max_ready_depth = st.sched_max_ready_depth.max(ready_depth);
            }
            EventKind::Counter { name, value, .. } => {
                *st.counters.entry(name).or_insert(0) += value;
            }
            EventKind::Instant { name, detail, .. } => {
                let key = if detail.is_empty() {
                    name
                } else {
                    format!("{name}:{detail}")
                };
                *st.counters.entry(key).or_insert(0) += 1;
            }
            EventKind::Fault { action, .. } => {
                *st.counters
                    .entry(format!("fault.{}", action.name()))
                    .or_insert(0) += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn node_event(op: &str, start: u64, end: u64, flops: u64) -> EventKind {
        EventKind::Node {
            name: format!("{op}.x"),
            op: op.to_string(),
            start_ns: start,
            end_ns: end,
            flops,
            bytes: 4,
        }
    }

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let s = NullSink;
        assert!(!s.enabled());
        assert_eq!(s.timestamp(), 0);
        s.record(node_event("Relu", 0, 1, 1)); // must not panic
    }

    #[test]
    fn ring_buffer_caps_and_counts_drops() {
        let s = RingBufferSink::new(2);
        for i in 0..5 {
            s.record(node_event("Relu", i, i + 1, 1));
        }
        assert_eq!(s.len(), 2);
        assert_eq!(s.dropped(), 3);
        let ev = s.events();
        // The survivors are the most recent events, seqs still unique.
        assert_eq!(ev[0].seq, 3);
        assert_eq!(ev[1].seq, 4);
        assert!(crate::validate(&ev).is_ok());
        assert_eq!(s.take().len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    fn ring_buffer_seqs_unique_across_threads() {
        let s = std::sync::Arc::new(RingBufferSink::new(4096));
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = &s;
                scope.spawn(move || {
                    for i in 0..100 {
                        s.record(node_event("Linear", i, i + 1, 2));
                    }
                });
            }
        });
        let ev = s.events();
        assert_eq!(ev.len(), 400);
        assert!(crate::validate(&ev).is_ok());
    }

    #[test]
    fn stats_sink_aggregates() {
        let s = StatsSink::new();
        s.record(node_event("Conv2d", 0, 100, 10));
        s.record(node_event("Conv2d", 100, 150, 10));
        s.record(node_event("Relu", 150, 160, 0));
        s.record(EventKind::Counter {
            name: "buffer_pool.hits".into(),
            value: 3,
            at_ns: 160,
        });
        s.record(EventKind::Counter {
            name: "buffer_pool.hits".into(),
            value: 2,
            at_ns: 161,
        });
        s.record(EventKind::Phase {
            phase: Phase::Run,
            detail: String::new(),
            start_ns: 0,
            end_ns: 160,
        });
        s.record(EventKind::Sched {
            node: "n".into(),
            spawn_ns: 5,
            start_ns: 15,
            ready_depth: 7,
        });
        assert_eq!(s.counter("buffer_pool.hits"), 5);
        assert_eq!(s.events_recorded(), 7);
        let (mean_lat, depth) = s.sched_stats();
        assert_eq!(mean_lat, 10.0);
        assert_eq!(depth, 7);
        let summary = s.summary(10);
        let conv = summary.ops.iter().find(|o| o.name == "Conv2d").unwrap();
        assert_eq!(conv.count, 2);
        assert_eq!(conv.total_ns, 150);
        assert_eq!(conv.flops, 20);
    }

    #[test]
    fn thread_ordinals_are_small_and_distinct() {
        let a = thread_ord();
        let b = std::thread::spawn(thread_ord).join().unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
