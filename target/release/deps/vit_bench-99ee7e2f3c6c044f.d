/root/repo/target/release/deps/vit_bench-99ee7e2f3c6c044f.d: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs

/root/repo/target/release/deps/vit_bench-99ee7e2f3c6c044f: crates/bench/src/lib.rs crates/bench/src/experiments/mod.rs crates/bench/src/experiments/ablations.rs crates/bench/src/experiments/accelerator.rs crates/bench/src/experiments/characterization.rs crates/bench/src/experiments/engine.rs crates/bench/src/experiments/headline.rs crates/bench/src/experiments/resilience.rs

crates/bench/src/lib.rs:
crates/bench/src/experiments/mod.rs:
crates/bench/src/experiments/ablations.rs:
crates/bench/src/experiments/accelerator.rs:
crates/bench/src/experiments/characterization.rs:
crates/bench/src/experiments/engine.rs:
crates/bench/src/experiments/headline.rs:
crates/bench/src/experiments/resilience.rs:
