/root/repo/target/release/deps/vit_models-3b268dcbf3fea4ff.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs Cargo.toml

/root/repo/target/release/deps/libvit_models-3b268dcbf3fea4ff.rmeta: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
