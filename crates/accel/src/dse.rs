//! Accelerator design-space exploration (Figure 14 and §VI).

use crate::config::AccelConfig;
use crate::sim::{simulate, SimOptions};
use serde::{Deserialize, Serialize};
use vit_graph::Graph;

/// One evaluated design point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// The architecture.
    pub config: AccelConfig,
    /// End-to-end cycles for the evaluated graph.
    pub cycles: u64,
    /// Total energy in joules.
    pub energy_j: f64,
    /// PE-array area in mm^2.
    pub area_mm2: f64,
}

/// Enumerates the paper's design space — vectorization splits of the 16384
/// parallel MACs crossed with weight/activation memory sizes — and
/// simulates `graph` on each point.
pub fn design_space(
    graph: &Graph,
    vectorizations: &[(usize, usize)],
    wm_kb: &[usize],
    am_kb: &[usize],
    opts: &SimOptions,
) -> Vec<DesignPoint> {
    let mut out = Vec::new();
    for &(k0, c0) in vectorizations {
        for &wm in wm_kb {
            for &am in am_kb {
                let Some(cfg) = AccelConfig::with_vectorization(k0, c0, wm, am) else {
                    continue;
                };
                let r = simulate(graph, &cfg, opts);
                out.push(DesignPoint {
                    config: cfg,
                    cycles: r.total_cycles(),
                    energy_j: r.total_energy_j(),
                    area_mm2: cfg.pe_array_area_mm2(),
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};

    #[test]
    fn design_space_enumerates_valid_points() {
        let g =
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(128, 128))
                .unwrap();
        let points = design_space(
            &g,
            &[(32, 32), (16, 16), (47, 13)],
            &[128, 1024],
            &[64],
            &SimOptions::default(),
        );
        // (47, 13) does not divide 16384 and is skipped.
        assert_eq!(points.len(), 4);
        for p in &points {
            assert!(p.cycles > 0);
            assert!(p.energy_j > 0.0);
            assert!(p.area_mm2 > 0.0);
        }
    }

    #[test]
    fn bigger_memories_cost_area_not_cycles_much() {
        let g =
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(128, 128))
                .unwrap();
        let points = design_space(&g, &[(32, 32)], &[128, 1024], &[64], &SimOptions::default());
        let small = &points[0];
        let big = &points[1];
        assert!(big.area_mm2 > 2.0 * small.area_mm2);
        let slowdown = small.cycles as f64 / big.cycles as f64;
        assert!(slowdown < 1.10, "slowdown {slowdown}");
    }
}
