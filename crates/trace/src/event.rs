//! Typed trace events and their well-formedness rules.

use std::fmt;

/// The engine- or server-level phase a [`EventKind::Phase`] span covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum Phase {
    /// Pareto-LUT lookup of the execution path for a budget.
    LutSelect,
    /// Building an execution graph after a graph-cache miss.
    GraphBuild,
    /// Generating/caching the parameter tensors a graph needs.
    WeightMaterialize,
    /// One full graph execution (sequential or wavefront).
    Run,
    /// A serving request's time from submission to worker dispatch.
    QueueWait,
    /// A serving worker executing one request end to end.
    Execute,
    /// Compiling a graph into an execution plan after a plan-cache miss.
    PlanBuild,
    /// One full replay of a compiled execution plan.
    PlanReplay,
}

impl Phase {
    /// Stable lower-snake name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            Phase::LutSelect => "lut_select",
            Phase::GraphBuild => "graph_build",
            Phase::WeightMaterialize => "weight_materialize",
            Phase::Run => "run",
            Phase::QueueWait => "queue_wait",
            Phase::Execute => "execute",
            Phase::PlanBuild => "plan_build",
            Phase::PlanReplay => "plan_replay",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// What one [`TraceEvent`] describes.
///
/// Spans carry explicit `start_ns`/`end_ns` stamped by the recorder (via
/// [`crate::now_ns`]) so an event is complete the moment it is recorded —
/// sinks never hold open state, which is what keeps them lock-cheap.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum EventKind {
    /// One graph-node execution on one thread.
    Node {
        /// Graph node name (e.g. `encoder.s0.b1.attn.q`).
        name: String,
        /// Operator kind (the [`Op`] variant name, e.g. `Conv2d`).
        ///
        /// [`Op`]: https://docs.rs/vit-graph
        op: String,
        /// Span start, nanoseconds since the trace epoch.
        start_ns: u64,
        /// Span end, nanoseconds since the trace epoch.
        end_ns: u64,
        /// Analytical FLOPs of the node (MAC convention), matching the
        /// static count `vit-profiler` reports for the same node.
        flops: u64,
        /// First-order DRAM traffic: inputs + output + parameters, 4-byte
        /// elements.
        bytes: u64,
    },
    /// An engine- or server-level phase span.
    Phase {
        /// Which phase.
        phase: Phase,
        /// Free-form detail (config name, shed reason, …). Empty when the
        /// phase needs none.
        detail: String,
        /// Span start, nanoseconds since the trace epoch.
        start_ns: u64,
        /// Span end, nanoseconds since the trace epoch.
        end_ns: u64,
    },
    /// A wavefront-scheduler observation for one node: the gap between the
    /// moment the node became ready (spawned) and the moment a worker
    /// started it.
    Sched {
        /// Graph node name.
        node: String,
        /// When the node was spawned into the ready set.
        spawn_ns: u64,
        /// When a worker began executing it.
        start_ns: u64,
        /// Ready-set depth observed at spawn time (nodes spawned but not
        /// yet started, including this one).
        ready_depth: u64,
    },
    /// A named monotonic counter sample (buffer-pool hits, cache misses…).
    Counter {
        /// Counter name, dot-separated (e.g. `buffer_pool.hits`).
        name: String,
        /// Sampled value (a delta; sinks accumulate).
        value: u64,
        /// When it was sampled, nanoseconds since the trace epoch.
        at_ns: u64,
    },
    /// A point-in-time marker (admission decision, shed, …).
    Instant {
        /// Marker name (e.g. `admission`).
        name: String,
        /// Free-form detail (e.g. `shed:QueueFull`).
        detail: String,
        /// When it happened, nanoseconds since the trace epoch.
        at_ns: u64,
    },
    /// A fault-handling decision: a detected fault, a recovery step, or a
    /// circuit-breaker transition (point event).
    Fault {
        /// What the fault layer decided (see [`RecoveryAction`]).
        action: RecoveryAction,
        /// Free-form detail (fault kind, request seq, attempt, …).
        detail: String,
        /// When it happened, nanoseconds since the trace epoch.
        at_ns: u64,
    },
}

/// A fault-handling decision carried by [`EventKind::Fault`], covering the
/// detect → recover state machine in `vit-serve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum RecoveryAction {
    /// A fault (injected or real) was detected on an execution attempt.
    Detected,
    /// The request is being retried with its remaining slack as a tighter
    /// budget (degraded retry).
    Retry,
    /// The retry additionally falls back `Plan → Interpret` after a
    /// plan-replay failure.
    BackendFallback,
    /// A worker's consecutive-failure circuit breaker opened.
    CircuitOpen,
    /// A worker's circuit breaker closed again after a success.
    CircuitClose,
    /// The request failed without retry (fail-fast policy or retries
    /// exhausted).
    FailFast,
    /// A degraded retry completed and was delivered.
    Degraded,
}

impl RecoveryAction {
    /// Stable lower-snake name used by exporters.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryAction::Detected => "detected",
            RecoveryAction::Retry => "retry",
            RecoveryAction::BackendFallback => "backend_fallback",
            RecoveryAction::CircuitOpen => "circuit_open",
            RecoveryAction::CircuitClose => "circuit_close",
            RecoveryAction::FailFast => "fail_fast",
            RecoveryAction::Degraded => "degraded",
        }
    }
}

impl fmt::Display for RecoveryAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded event: a logical sequence number (unique per sink,
/// assigned at record time), the recording thread's ordinal, and the typed
/// payload.
///
/// Sequence numbers give a total *logical* order that is stable across
/// runs with identical scheduling and usable even when wall-clock stamps
/// collide; they are what lets differential tests compare traced and
/// untraced runs without depending on timing.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Sink-assigned logical sequence number, unique within one sink.
    pub seq: u64,
    /// Ordinal of the recording OS thread (see [`crate::thread_ord`]).
    pub thread: u64,
    /// The typed payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// The span interval `(start_ns, end_ns)` for span-shaped events.
    pub fn span_ns(&self) -> Option<(u64, u64)> {
        match &self.kind {
            EventKind::Node {
                start_ns, end_ns, ..
            }
            | EventKind::Phase {
                start_ns, end_ns, ..
            } => Some((*start_ns, *end_ns)),
            EventKind::Sched {
                spawn_ns, start_ns, ..
            } => Some((*spawn_ns, *start_ns)),
            EventKind::Counter { .. } | EventKind::Instant { .. } | EventKind::Fault { .. } => None,
        }
    }

    /// The nanosecond stamp exporters order this event by: span start for
    /// spans, the sample/marker time otherwise.
    pub fn at_ns(&self) -> u64 {
        match &self.kind {
            EventKind::Node { start_ns, .. } | EventKind::Phase { start_ns, .. } => *start_ns,
            EventKind::Sched { spawn_ns, .. } => *spawn_ns,
            EventKind::Counter { at_ns, .. }
            | EventKind::Instant { at_ns, .. }
            | EventKind::Fault { at_ns, .. } => *at_ns,
        }
    }
}

/// Why a recorded event stream is not a well-formed trace.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TraceFormatError {
    /// Two events carry the same sequence number.
    DuplicateSeq {
        /// The repeated sequence number.
        seq: u64,
    },
    /// A span ends before it starts.
    NegativeDuration {
        /// Sequence number of the offending event.
        seq: u64,
    },
    /// Two spans on one thread partially overlap (neither nests in the
    /// other), which no single-threaded recorder can produce.
    BadNesting {
        /// Thread ordinal where the overlap was found.
        thread: u64,
        /// Sequence numbers of the two overlapping spans.
        seqs: (u64, u64),
    },
}

impl fmt::Display for TraceFormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceFormatError::DuplicateSeq { seq } => {
                write!(f, "duplicate sequence number {seq}")
            }
            TraceFormatError::NegativeDuration { seq } => {
                write!(f, "event {seq} ends before it starts")
            }
            TraceFormatError::BadNesting { thread, seqs } => write!(
                f,
                "spans {} and {} on thread {thread} partially overlap",
                seqs.0, seqs.1
            ),
        }
    }
}

impl std::error::Error for TraceFormatError {}

/// Checks an event stream for well-formedness: unique sequence numbers, no
/// negative durations, and proper (stack-like) span nesting per thread.
///
/// Both the trace test suite and `repro bench --trace` run every captured
/// trace through this before trusting it.
///
/// # Errors
///
/// Returns the first [`TraceFormatError`] found.
pub fn validate(events: &[TraceEvent]) -> Result<(), TraceFormatError> {
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
    seqs.sort_unstable();
    for w in seqs.windows(2) {
        if w[0] == w[1] {
            return Err(TraceFormatError::DuplicateSeq { seq: w[0] });
        }
    }
    for e in events {
        if let Some((start, end)) = e.span_ns() {
            if end < start {
                return Err(TraceFormatError::NegativeDuration { seq: e.seq });
            }
        }
    }
    // Per-thread nesting: Node/Phase spans recorded on one thread must form
    // a stack (each pair either disjoint or one containing the other).
    // Cross-thread spans are excluded — `Sched` starts on the *spawning*
    // thread, and `QueueWait` starts on the *submitting* thread, so both
    // legitimately straddle the recording thread's span stack.
    let mut threads: Vec<u64> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    for t in threads {
        let mut spans: Vec<(u64, u64, u64)> = events
            .iter()
            .filter(|e| e.thread == t)
            .filter_map(|e| match &e.kind {
                EventKind::Phase {
                    phase: Phase::QueueWait,
                    ..
                } => None,
                EventKind::Node {
                    start_ns, end_ns, ..
                }
                | EventKind::Phase {
                    start_ns, end_ns, ..
                } => Some((*start_ns, *end_ns, e.seq)),
                _ => None,
            })
            .collect();
        // Sort by start; ties put the longer span first so a parent
        // precedes children it shares a start stamp with.
        spans.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let mut stack: Vec<(u64, u64, u64)> = Vec::new();
        for s in spans {
            while let Some(top) = stack.last() {
                if s.0 >= top.1 {
                    stack.pop(); // top finished before this span began
                } else if s.1 > top.1 {
                    return Err(TraceFormatError::BadNesting {
                        thread: t,
                        seqs: (top.2, s.2),
                    });
                } else {
                    break; // properly nested inside top
                }
            }
            stack.push(s);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(seq: u64, thread: u64, start: u64, end: u64) -> TraceEvent {
        TraceEvent {
            seq,
            thread,
            kind: EventKind::Node {
                name: format!("n{seq}"),
                op: "Relu".into(),
                start_ns: start,
                end_ns: end,
                flops: 1,
                bytes: 8,
            },
        }
    }

    #[test]
    fn valid_nested_trace_passes() {
        let events = vec![
            TraceEvent {
                seq: 0,
                thread: 0,
                kind: EventKind::Phase {
                    phase: Phase::Run,
                    detail: String::new(),
                    start_ns: 0,
                    end_ns: 100,
                },
            },
            node(1, 0, 10, 20),
            node(2, 0, 20, 90),
            node(3, 1, 15, 25), // other thread overlaps freely
        ];
        assert_eq!(validate(&events), Ok(()));
    }

    #[test]
    fn duplicate_seq_rejected() {
        let events = vec![node(5, 0, 0, 1), node(5, 1, 2, 3)];
        assert_eq!(
            validate(&events),
            Err(TraceFormatError::DuplicateSeq { seq: 5 })
        );
    }

    #[test]
    fn negative_duration_rejected() {
        let events = vec![node(0, 0, 10, 5)];
        assert_eq!(
            validate(&events),
            Err(TraceFormatError::NegativeDuration { seq: 0 })
        );
    }

    #[test]
    fn partial_overlap_on_one_thread_rejected() {
        let events = vec![node(0, 0, 0, 50), node(1, 0, 25, 75)];
        assert!(matches!(
            validate(&events),
            Err(TraceFormatError::BadNesting { thread: 0, .. })
        ));
    }

    #[test]
    fn sched_spans_may_straddle_threads() {
        let events = vec![
            node(0, 0, 0, 50),
            TraceEvent {
                seq: 1,
                thread: 0,
                kind: EventKind::Sched {
                    node: "x".into(),
                    spawn_ns: 10,
                    start_ns: 60,
                    ready_depth: 2,
                },
            },
        ];
        assert_eq!(validate(&events), Ok(()));
    }
}
