/root/repo/target/release/deps/proptest-1cf2feaff14ef0ba.d: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1cf2feaff14ef0ba.rlib: vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-1cf2feaff14ef0ba.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
