//! The paper's headline numeric claims, each checked against this
//! reproduction in one place.

use crate::{banner, pct, Table};
use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerDynamic, SegFormerVariant,
    SwinConfig, SwinVariant,
};
use vit_profiler::GpuModel;
use vit_resilience::{table2_ade, table2_cityscapes, AccuracyModel, Workload};

/// Prints paper-claim vs reproduction rows for every headline number.
pub fn headline() {
    banner("Headline claims — paper vs reproduction");
    let gpu = GpuModel::titan_v();
    let opts = SimOptions::default();
    let v = SegFormerVariant::b2();

    let seg = build_segformer(&SegFormerConfig::ade20k(v)).expect("builds");
    let swin = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).expect("builds");
    let acc_a = simulate(&seg, &AccelConfig::accelerator_a(), &opts);
    let acc_star = simulate(&seg, &AccelConfig::accelerator_star(), &opts);
    let swin_star = simulate(&swin, &AccelConfig::accelerator_star(), &opts);

    let mut t = Table::new(&["claim", "paper", "ours"]);

    // Accelerator speedups.
    let seg_gpu_ms = gpu.total_time(&seg) * 1e3;
    let swin_gpu_ms = gpu.total_time(&swin) * 1e3;
    t.row(&[
        "SegFormer-B2 on accelerator_A vs TITAN V".to_string(),
        "16.6x (3.5 ms vs 58 ms)".to_string(),
        format!(
            "{:.1}x ({:.1} ms vs {:.1} ms)",
            seg_gpu_ms / (acc_a.total_time_s() * 1e3),
            acc_a.total_time_s() * 1e3,
            seg_gpu_ms
        ),
    ]);
    t.row(&[
        "SegFormer-B2 on accelerator* vs TITAN V".to_string(),
        "16x (3.6 ms)".to_string(),
        format!(
            "{:.1}x ({:.1} ms)",
            seg_gpu_ms / (acc_star.total_time_s() * 1e3),
            acc_star.total_time_s() * 1e3
        ),
    ]);
    t.row(&[
        "Swin-Tiny on accelerator* vs TITAN V".to_string(),
        "17x (12.4 ms vs 215 ms)".to_string(),
        format!(
            "{:.1}x ({:.1} ms vs {:.1} ms)",
            swin_gpu_ms / (swin_star.total_time_s() * 1e3),
            swin_star.total_time_s() * 1e3,
            swin_gpu_ms
        ),
    ]);

    // accelerator* vs accelerator_A.
    t.row(&[
        "accelerator* PE-array area vs accelerator_A".to_string(),
        "4.3x smaller".to_string(),
        format!(
            "{:.1}x smaller ({:.2} vs {:.2} mm^2)",
            AccelConfig::accelerator_a().pe_array_area_mm2()
                / AccelConfig::accelerator_star().pe_array_area_mm2(),
            AccelConfig::accelerator_star().pe_array_area_mm2(),
            AccelConfig::accelerator_a().pe_array_area_mm2()
        ),
    ]);
    t.row(&[
        "accelerator* slowdown on full SegFormer-B2".to_string(),
        "< 3%".to_string(),
        pct(acc_star.total_cycles() as f64 / acc_a.total_cycles() as f64 - 1.0),
    ]);

    // Resilience savings.
    let ade_model = AccuracyModel::for_workload(Workload::SegFormerAde);
    let time_of = |d: &SegFormerDynamic, city: bool| {
        let cfg = if city {
            SegFormerConfig::cityscapes(v)
        } else {
            SegFormerConfig::ade20k(v)
        }
        .with_dynamic(*d);
        gpu.total_time(&build_segformer(&cfg).expect("builds"))
    };
    let full_ade = time_of(&SegFormerDynamic::full(&v), false);
    // Find the best time saving among Table II ADE points with < 6% drop.
    let best_ade = table2_ade()
        .iter()
        .map(|p| p.to_segformer_dynamic(&v))
        .filter(|d| ade_model.norm_miou_segformer(d, &v) > 0.94)
        .map(|d| 1.0 - time_of(&d, false) / full_ade)
        .fold(0.0f64, f64::max);
    t.row(&[
        "ADE time saving at <6% mIoU drop (no retraining)".to_string(),
        "17%".to_string(),
        pct(best_ade),
    ]);
    let energy_of = |d: &SegFormerDynamic| {
        gpu.total_energy(
            &build_segformer(&SegFormerConfig::ade20k(v).with_dynamic(*d)).expect("builds"),
        )
    };
    let best_ade_cfg = table2_ade()
        .iter()
        .map(|p| p.to_segformer_dynamic(&v))
        .filter(|d| ade_model.norm_miou_segformer(d, &v) > 0.94)
        .min_by(|a, b| {
            time_of(a, false)
                .partial_cmp(&time_of(b, false))
                .expect("finite")
        })
        .expect("points exist");
    t.row(&[
        "energy saving at that point".to_string(),
        "28%".to_string(),
        pct(1.0 - energy_of(&best_ade_cfg) / energy_of(&SegFormerDynamic::full(&v))),
    ]);

    let city_model = AccuracyModel::for_workload(Workload::SegFormerCityscapes);
    let full_city = time_of(&SegFormerDynamic::full(&v), true);
    let best_city = table2_cityscapes()
        .iter()
        .map(|p| p.to_segformer_dynamic(&v))
        .filter(|d| city_model.norm_miou_segformer(d, &v) >= 0.95 - 1e-9)
        .map(|d| 1.0 - time_of(&d, true) / full_city)
        .fold(0.0f64, f64::max);
    t.row(&[
        "Cityscapes time saving at <5% mIoU drop".to_string(),
        "28%".to_string(),
        pct(best_city),
    ]);

    // The surprising 736-channel configuration.
    let mut d736 = SegFormerDynamic::full(&v);
    d736.fuse_out_channels = 736;
    let miou736 = ade_model.absolute_miou(ade_model.norm_miou_segformer(&d736, &v));
    let speed736 = 1.0 - time_of(&d736, false) / full_ade;
    t.row(&[
        "736-ch Conv2DPred config vs full model".to_string(),
        "mIoU 0.4655 > 0.4651, 2.6% faster".to_string(),
        format!("mIoU {:.4}, {} faster", miou736, pct(speed736)),
    ]);
    t.print();
}

/// A compact regression summary for EXPERIMENTS.md generation.
pub fn summary() {
    headline();
    println!();
    println!("see EXPERIMENTS.md for the full per-figure record.");
}

#[cfg(test)]
mod tests {
    #[test]
    fn headline_runs() {
        super::headline();
    }
}
