//! §III resilience experiments: Tables II/III and Figures 6/7, plus the
//! measured-fidelity companion study.

use crate::{banner, f, Table};
use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant, SwinDynamic, SwinVariant};
use vit_profiler::GpuModel;
use vit_resilience::{
    fig7_swin_tiny, pareto_front, segformer_fidelity, segformer_sweep_space, sweep_segformer,
    sweep_swin, table2_ade, table2_cityscapes, table3_swin_base, trained_segformer_ade,
    trained_segformer_cityscapes, trained_swin_ade, AccuracyModel, FidelitySettings, PaperPoint,
    ResourceKind, Workload,
};

fn norm_time_segformer(workload: Workload, p: &PaperPoint) -> f64 {
    let v = SegFormerVariant::b2();
    let gpu = GpuModel::titan_v();
    let base = match workload {
        Workload::SegFormerCityscapes => SegFormerConfig::cityscapes(v),
        _ => SegFormerConfig::ade20k(v),
    };
    let full = gpu.total_time(&build_segformer(&base.clone()).expect("builds"));
    let cfg = base.with_dynamic(p.to_segformer_dynamic(&v));
    gpu.total_time(&build_segformer(&cfg).expect("builds")) / full
}

/// Table II: SegFormer dynamic execution-path configurations.
pub fn table2() {
    banner("Table II — SegFormer-B2 dynamic configurations");
    let v = SegFormerVariant::b2();
    let mut t = Table::new(&[
        "label",
        "depths",
        "fuse in-ch",
        "norm util (paper)",
        "norm time (ours)",
        "norm mIoU (paper)",
        "norm mIoU (model)",
    ]);
    for (workload, points) in [
        (Workload::SegFormerAde, table2_ade()),
        (Workload::SegFormerCityscapes, table2_cityscapes()),
    ] {
        let model = AccuracyModel::for_workload(workload);
        for p in points {
            if workload == Workload::SegFormerCityscapes && p.label == "A" {
                continue; // shared row
            }
            let ours_res = norm_time_segformer(workload, &p);
            let ours_miou = model.norm_miou_segformer(&p.to_segformer_dynamic(&v), &v);
            t.row(&[
                p.label.to_string(),
                format!("{:?}", p.depths),
                p.fuse_in_channels.to_string(),
                f(p.norm_resource, 2),
                f(ours_res, 2),
                f(p.norm_miou, 2),
                f(ours_miou, 2),
            ]);
        }
    }
    t.print();
}

/// Figure 6: SegFormer trade-off curves + trained-model squares.
pub fn fig6() {
    banner("Figure 6 — SegFormer accuracy/time trade-off (dynamic pruning, no retraining)");
    let v = SegFormerVariant::b2();
    for (workload, name, trained) in [
        (
            Workload::SegFormerAde,
            "ADE20K (512x512)",
            trained_segformer_ade(),
        ),
        (
            Workload::SegFormerCityscapes,
            "Cityscapes (1024x2048)",
            trained_segformer_cityscapes(),
        ),
    ] {
        println!("--- {name} ---");
        let image = if workload == Workload::SegFormerCityscapes {
            (1024, 2048)
        } else {
            (512, 512)
        };
        let classes = if workload == Workload::SegFormerCityscapes {
            19
        } else {
            150
        };
        let space = segformer_sweep_space(&v, 2, 8);
        let points = sweep_segformer(&v, workload, image, classes, &space, ResourceKind::GpuTime);
        let front = pareto_front(&points);
        let mut t = Table::new(&["norm time", "norm mIoU", "depths", "fuse in-ch"]);
        for p in front.iter().filter(|p| p.norm_miou > 0.55) {
            if let vit_resilience::DynConfig::SegFormer(d) = p.config {
                t.row(&[
                    f(p.norm_resource, 3),
                    f(p.norm_miou, 3),
                    format!("{:?}", d.depths),
                    d.fuse_in_channels.to_string(),
                ]);
            }
        }
        t.print();
        println!();
        println!("trained-model squares (retrained baselines):");
        let mut t2 = Table::new(&["model", "norm resource (GFLOPs)", "norm mIoU"]);
        let full_gf = trained[0].gflops;
        for m in &trained {
            t2.row(&[
                m.name.to_string(),
                f(m.gflops / full_gf, 3),
                f(m.norm_miou, 3),
            ]);
        }
        t2.print();
        println!();
    }
    println!(
        "paper: ADE saves 17% time (<6% mIoU drop); Cityscapes saves 28% (<5% drop); \
         dynamic pruning is competitive until ~25% savings, switch to retrained \
         models by 50%."
    );
}

/// Table III: Swin-Base dynamic configurations.
pub fn table3() {
    banner("Table III — Swin-Base dynamic configurations");
    let vb = SwinVariant::base();
    let model = AccuracyModel::for_workload(Workload::SwinBaseAde);
    let space: Vec<SwinDynamic> = table3_swin_base()
        .iter()
        .map(|p| p.to_swin_dynamic(&vb))
        .collect();
    let pts = sweep_swin(
        &vb,
        Workload::SwinBaseAde,
        (512, 512),
        150,
        &space,
        ResourceKind::GpuTime,
    );
    let mut t = Table::new(&[
        "depths",
        "bottleneck in-ch",
        "norm util (paper)",
        "norm time (ours)",
        "norm mIoU (paper)",
        "norm mIoU (model)",
    ]);
    for (p, ours) in table3_swin_base().iter().zip(pts.iter()) {
        t.row(&[
            format!("{:?}", p.depths),
            p.fuse_in_channels.to_string(),
            f(p.norm_resource, 3),
            f(ours.norm_resource, 3),
            f(p.norm_miou, 2),
            f(model.norm_miou_swin(&p.to_swin_dynamic(&vb), &vb), 2),
        ]);
    }
    t.print();
    println!();
    println!(
        "note: the paper's 'normalized resource' for Swin-Base drops faster than \
         pure FLOPs because its measurements include the batch-16 batching \
         effects discussed in §III-B; our column is batch-1 modeled GPU time."
    );
}

/// Figure 7: Swin trade-off curves + trained-model squares.
pub fn fig7() {
    banner("Figure 7 — Swin accuracy/time trade-off");
    let vt = SwinVariant::tiny();
    let model_t = AccuracyModel::for_workload(Workload::SwinTinyAde);
    println!("Swin-Tiny channel-cut curve (channels preserved into fpn_bottleneck):");
    let space: Vec<SwinDynamic> = fig7_swin_tiny()
        .iter()
        .map(|p| p.to_swin_dynamic(&vt))
        .collect();
    let pts = sweep_swin(
        &vt,
        Workload::SwinTinyAde,
        (512, 512),
        150,
        &space,
        ResourceKind::GpuTime,
    );
    let mut t = Table::new(&["channels", "norm time (ours)", "norm mIoU (model)"]);
    for (p, ours) in fig7_swin_tiny().iter().zip(pts.iter()) {
        t.row(&[
            p.fuse_in_channels.to_string(),
            f(ours.norm_resource, 3),
            f(model_t.norm_miou_swin(&p.to_swin_dynamic(&vt), &vt), 2),
        ]);
    }
    t.print();
    println!();
    println!(
        "deviation: our roofline GPU model rewards Swin channel cuts in\n\
         proportion to FLOPs (0.39x at 512 channels), while the paper's GPU\n\
         measurements found little saving (0.79x) — a cudnn kernel-selection\n\
         inefficiency at low channel counts that a throughput model does not\n\
         represent. On the accelerator (Figures 12/13) time tracks FLOPs and\n\
         the two agree."
    );
    println!();
    println!("Swin-Tiny encoder skips are not Pareto-competitive (paper §III-B):");
    let skip = SwinDynamic {
        depths: [2, 2, 5, 2],
        bottleneck_in_channels: 2048,
    };
    let skip_pts = sweep_swin(
        &vt,
        Workload::SwinTinyAde,
        (512, 512),
        150,
        &[skip],
        ResourceKind::GpuTime,
    );
    println!(
        "  skipping 1 stage-2 block: norm time {:.3}, norm mIoU {:.2} \
         (large accuracy cost for little time)",
        skip_pts[0].norm_resource,
        model_t.norm_miou_swin(&skip, &vt)
    );
    println!();
    println!("batch effect (paper: batch 16 pushes the curve left, 27% savings):");
    {
        use vit_models::{build_swin_upernet, SwinConfig};
        use vit_profiler::GpuModel;
        let gpu = GpuModel::titan_v();
        let mut t = Table::new(&["channels", "norm time b=1", "norm time b=16"]);
        let time_at = |ch: usize, batch: usize| -> f64 {
            let cfg = SwinConfig::ade20k(vt)
                .with_batch(batch)
                .with_dynamic(SwinDynamic {
                    depths: vt.depths,
                    bottleneck_in_channels: ch,
                });
            gpu.total_time(&build_swin_upernet(&cfg).expect("builds"))
        };
        let full1 = time_at(2048, 1);
        let full16 = time_at(2048, 16);
        for ch in [2048usize, 1536, 1024, 512] {
            t.row(&[
                ch.to_string(),
                f(time_at(ch, 1) / full1, 3),
                f(time_at(ch, 16) / full16, 3),
            ]);
        }
        t.print();
    }
    println!();
    println!("trained Swin models (squares):");
    let mut t2 = Table::new(&["model", "norm resource (GFLOPs)", "norm mIoU"]);
    let trained = trained_swin_ade();
    let full = trained[0].gflops;
    for m in &trained {
        t2.row(&[m.name.to_string(), f(m.gflops / full, 3), f(m.norm_miou, 3)]);
    }
    t2.print();
    println!();
    println!("Swin-Base dynamic points remain competitive with Swin-Small (paper §III-B):");
    let vb = SwinVariant::base();
    let model_b = AccuracyModel::for_workload(Workload::SwinBaseAde);
    for p in table3_swin_base().iter().filter(|p| p.norm_resource < 0.8) {
        println!(
            "  depths {:?}, ch {}: paper norm mIoU {:.2}, model {:.2}",
            p.depths,
            p.fuse_in_channels,
            p.norm_miou,
            model_b.norm_miou_swin(&p.to_swin_dynamic(&vb), &vb)
        );
    }
}

/// Measured fidelity companion: runs the real pruned graphs and reports the
/// mIoU between pruned and full outputs (executable at small image sizes).
pub fn fidelity() {
    banner("Measured fidelity — pruned vs full SegFormer output agreement (64x64, real execution)");
    let v = SegFormerVariant::b0();
    let settings = FidelitySettings {
        image: (64, 64),
        samples: 3,
        seed: 11,
    };
    let mut t = Table::new(&["depths", "fuse in-ch", "fidelity mIoU vs full"]);
    let configs = [
        (v.depths, 1024usize),
        (v.depths, 768),
        (v.depths, 512),
        ([2, 2, 2, 2], 256),
        ([1, 2, 2, 2], 256),
        ([1, 1, 1, 1], 128),
    ];
    for (depths, ch) in configs {
        let d = vit_models::SegFormerDynamic::with_depths_and_fuse(&v, depths, ch);
        let fidelity = segformer_fidelity(&v, &d, &settings).expect("fidelity runs");
        t.row(&[format!("{depths:?}"), ch.to_string(), f(fidelity, 3)]);
    }
    t.print();
    println!();
    println!(
        "the agreement degrades gracefully with pruning depth — the measured \
         analogue of the paper's resilience claim, with the full model as \
         the reference instead of dataset ground truth."
    );
}
