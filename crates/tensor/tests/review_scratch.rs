use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vit_tensor::par::ThreadPool;

// If the closure passed to `scope` panics after spawning, the scope must
// still wait for every spawned job before unwinding — otherwise a job
// borrowing the scope body's stack frame would run against freed memory.
#[test]
fn panicked_scope_body_waits_for_spawned_jobs() {
    let pool = ThreadPool::new(2);
    let completed = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&completed);
    let result = catch_unwind(AssertUnwindSafe(|| {
        let local = [1u8, 2, 3]; // stands in for borrowed stack data
        pool.scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(Duration::from_millis(100));
                // `local` must still be alive here: the scope frame may
                // not unwind until this job has finished.
                let _ = local.len();
                flag.store(true, Ordering::SeqCst);
            });
            panic!("scope body panics after spawning");
        });
    }));
    assert!(result.is_err(), "the body's panic must propagate");
    assert!(
        completed.load(Ordering::SeqCst),
        "scope unwound before its spawned job completed: borrowed stack \
         data was dangling"
    );
}
