/root/repo/target/debug/deps/new_ops-338d6ecfe1f7759a.d: crates/graph/tests/new_ops.rs

/root/repo/target/debug/deps/new_ops-338d6ecfe1f7759a: crates/graph/tests/new_ops.rs

crates/graph/tests/new_ops.rs:
