/root/repo/target/release/deps/serving-42600c1d75c5a41e.d: crates/serve/../../tests/serving.rs

/root/repo/target/release/deps/serving-42600c1d75c5a41e: crates/serve/../../tests/serving.rs

crates/serve/../../tests/serving.rs:
