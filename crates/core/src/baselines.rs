//! Baselines the paper compares against: switching between independently
//! *retrained* static models (the large squares in Figures 6/7) and
//! input-dependent early-exit inference (the related-work class the paper
//! argues cannot enforce a hard budget).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
use vit_profiler::GpuModel;
use vit_resilience::{
    trained_segformer_ade, trained_segformer_cityscapes, trained_swin_ade, Workload,
};

/// One retrained static model: the resource it needs and the accuracy it
/// delivers, both normalized to the case-study model's full execution.
#[derive(Debug, Clone, PartialEq)]
pub struct StaticModel {
    /// Model name.
    pub name: String,
    /// Resource normalized to the case-study full model.
    pub norm_resource: f64,
    /// Accuracy normalized to the case-study full model.
    pub norm_miou: f64,
}

/// The trained-model-switching baseline: a family of retrained models, each
/// a static point on the accuracy/resource plane.
#[derive(Debug, Clone)]
pub struct TrainedFamily {
    models: Vec<StaticModel>,
}

impl TrainedFamily {
    /// The published family for a workload, with resources normalized via
    /// the calibrated GPU model (SegFormer families) or published GFLOPs
    /// ratios (Swin).
    pub fn for_workload(workload: Workload) -> Self {
        let models = match workload {
            Workload::SegFormerAde | Workload::SegFormerCityscapes => {
                let gpu = GpuModel::titan_v();
                let (points, mk_cfg): (_, Box<dyn Fn(SegFormerVariant) -> SegFormerConfig>) =
                    if workload == Workload::SegFormerAde {
                        (trained_segformer_ade(), Box::new(SegFormerConfig::ade20k))
                    } else {
                        (
                            trained_segformer_cityscapes(),
                            Box::new(SegFormerConfig::cityscapes),
                        )
                    };
                let time_of = |v: SegFormerVariant| {
                    gpu.total_time(&build_segformer(&mk_cfg(v)).expect("published variants build"))
                };
                let full = time_of(SegFormerVariant::b2());
                points
                    .into_iter()
                    .map(|p| {
                        let v = match p.name {
                            "segformer-b0" => SegFormerVariant::b0(),
                            "segformer-b1" => SegFormerVariant::b1(),
                            _ => SegFormerVariant::b2(),
                        };
                        StaticModel {
                            name: p.name.to_string(),
                            norm_resource: time_of(v) / full,
                            norm_miou: p.norm_miou,
                        }
                    })
                    .collect()
            }
            Workload::SwinTinyAde | Workload::SwinBaseAde => {
                let points = trained_swin_ade();
                let full = points[0].gflops;
                points
                    .into_iter()
                    .map(|p| StaticModel {
                        name: p.name.to_string(),
                        norm_resource: p.gflops / full,
                        norm_miou: p.norm_miou,
                    })
                    .collect()
            }
        };
        TrainedFamily { models }
    }

    /// The family's models, largest first.
    pub fn models(&self) -> &[StaticModel] {
        &self.models
    }

    /// The most accurate trained model fitting a normalized budget.
    pub fn best_for_budget(&self, norm_budget: f64) -> Option<&StaticModel> {
        self.models
            .iter()
            .filter(|m| m.norm_resource <= norm_budget)
            .max_by(|a, b| a.norm_miou.partial_cmp(&b.norm_miou).expect("finite"))
    }

    /// The normalized resource below which switching to a retrained model
    /// beats a dynamic-pruning front: the largest front resource where some
    /// trained model (other than the full model itself) achieves at least
    /// the front's accuracy at no more resource.
    ///
    /// `front` is `(norm_resource, norm_miou)` pairs sorted ascending.
    /// Returns `None` when the dynamic front is never beaten.
    pub fn crossover(&self, front: &[(f64, f64)]) -> Option<f64> {
        front
            .iter()
            .filter(|(r, a)| {
                self.models
                    .iter()
                    .any(|m| m.norm_resource < 0.99 && m.norm_resource <= *r && m.norm_miou >= *a)
            })
            .map(|(r, _)| *r)
            .fold(None, |acc, r| Some(acc.map_or(r, |a: f64| a.max(r))))
    }
}

/// A simulated input-dependent early-exit engine (BranchyNet / DeeBERT
/// class): the exit taken depends on the *input's difficulty*, not on any
/// resource budget — so under a hard deadline it misses whenever a hard
/// input arrives.
#[derive(Debug, Clone)]
pub struct EarlyExitBaseline {
    /// `(resource_fraction, norm_accuracy)` of each exit, shallow first.
    exits: Vec<(f64, f64)>,
    /// Confidence threshold for taking an exit.
    threshold: f64,
}

impl EarlyExitBaseline {
    /// A four-exit configuration typical of the early-exit literature.
    pub fn typical() -> Self {
        EarlyExitBaseline {
            exits: vec![(0.35, 0.80), (0.55, 0.90), (0.80, 0.97), (1.0, 1.0)],
            threshold: 0.75,
        }
    }

    /// Simulates one inference on an input with difficulty `d in [0, 1]`.
    /// Returns `(resource_fraction_used, norm_accuracy_delivered)`.
    pub fn run(&self, difficulty: f64) -> (f64, f64) {
        let d = difficulty.clamp(0.0, 1.0);
        for (i, &(res, acc)) in self.exits.iter().enumerate() {
            // Confidence grows with depth and shrinks with difficulty.
            let depth_frac = (i + 1) as f64 / self.exits.len() as f64;
            let confidence = (1.0 - d) * 0.5 + depth_frac * 0.5;
            if confidence >= self.threshold || i == self.exits.len() - 1 {
                return (res, acc);
            }
        }
        unreachable!("last exit always taken")
    }

    /// Fraction of inferences exceeding `budget` (a resource fraction) over
    /// a seeded stream of inputs with uniformly random difficulty.
    pub fn deadline_miss_rate(&self, budget: f64, samples: usize, seed: u64) -> f64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let misses = (0..samples)
            .filter(|_| {
                let (res, _) = self.run(rng.gen_range(0.0..1.0));
                res > budget
            })
            .count();
        misses as f64 / samples.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trained_family_ordering() {
        let fam = TrainedFamily::for_workload(Workload::SegFormerAde);
        assert_eq!(fam.models().len(), 3);
        // B2 is the most expensive and most accurate.
        let b2 = &fam.models()[0];
        assert!((b2.norm_resource - 1.0).abs() < 1e-9);
        assert!((b2.norm_miou - 1.0).abs() < 1e-9);
        for m in fam.models().iter().skip(1) {
            assert!(m.norm_resource < 1.0);
            assert!(m.norm_miou < 1.0);
        }
    }

    #[test]
    fn best_for_budget_picks_largest_that_fits() {
        let fam = TrainedFamily::for_workload(Workload::SegFormerAde);
        let full = fam.best_for_budget(1.5).unwrap();
        assert_eq!(full.name, "segformer-b2");
        let b0_res = fam
            .models()
            .iter()
            .find(|m| m.name == "segformer-b0")
            .unwrap()
            .norm_resource;
        let tight = fam.best_for_budget(b0_res + 0.01).unwrap();
        assert_eq!(tight.name, "segformer-b0");
        assert!(fam.best_for_budget(0.001).is_none());
    }

    #[test]
    fn crossover_detects_where_trained_models_win() {
        let fam = TrainedFamily::for_workload(Workload::SegFormerAde);
        // A weak dynamic front: at half the resource it only keeps 40% of
        // accuracy — trained models beat that regime.
        let weak_front = [(0.4, 0.3), (0.5, 0.4), (0.9, 0.97), (1.0, 1.0)];
        let c = fam.crossover(&weak_front).unwrap();
        assert!(c >= 0.5, "crossover {c}");
        // A dominant front is never beaten.
        let strong_front = [(0.3, 0.95), (1.0, 1.0)];
        assert!(fam.crossover(&strong_front).is_none());
    }

    #[test]
    fn early_exit_uses_less_resource_on_easy_inputs() {
        let ee = EarlyExitBaseline::typical();
        let (easy_res, _) = ee.run(0.0);
        let (hard_res, hard_acc) = ee.run(1.0);
        assert!(easy_res < hard_res);
        assert_eq!(hard_res, 1.0);
        assert_eq!(hard_acc, 1.0);
    }

    #[test]
    fn early_exit_misses_hard_deadlines() {
        // The paper's argument: an input-dependent mechanism cannot enforce
        // a budget below the deepest exit that hard inputs require.
        let ee = EarlyExitBaseline::typical();
        let miss = ee.deadline_miss_rate(0.6, 2000, 1);
        assert!(miss > 0.2, "miss rate {miss}");
        // A DRT engine at the same budget misses never (it picks a path
        // that fits by construction); with a generous budget neither does
        // early exit.
        assert_eq!(ee.deadline_miss_rate(1.0, 2000, 1), 0.0);
    }
}
