//! Pooling kernels: max, average, and the adaptive average pool used by the
//! UPerNet pyramid pooling module.

use crate::error::{invalid_argument, invalid_shape, Result};
use crate::tensor::Tensor;

fn check_nchw(op: &'static str, input: &Tensor) -> Result<(usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(invalid_shape(
            op,
            format!("expected NCHW rank-4 tensor, got {:?}", input.shape()),
        ));
    }
    Ok((
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ))
}

/// Max pooling with a square window, stride, and padding (padding counts as
/// negative infinity).
///
/// # Errors
///
/// Returns an error for non-NCHW input or a zero window/stride.
pub fn max_pool2d(input: &Tensor, window: usize, stride: usize, pad: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("max_pool2d", input)?;
    if window == 0 || stride == 0 {
        return Err(invalid_argument(
            "max_pool2d",
            "window and stride must be nonzero".to_string(),
        ));
    }
    let oh = (h + 2 * pad).saturating_sub(window) / stride + 1;
    let ow = (w + 2 * pad).saturating_sub(window) / stride + 1;
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let xd = input.data();
    let od = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    for ky in 0..window {
                        let iy = oy * stride + ky;
                        if iy < pad || iy >= h + pad {
                            continue;
                        }
                        for kx in 0..window {
                            let ix = ox * stride + kx;
                            if ix < pad || ix >= w + pad {
                                continue;
                            }
                            let v = xd[((b * c + ch) * h + (iy - pad)) * w + (ix - pad)];
                            best = best.max(v);
                        }
                    }
                    od[((b * c + ch) * oh + oy) * ow + ox] = best;
                }
            }
        }
    }
    Ok(out)
}

/// Adaptive average pooling to an exact output size, matching PyTorch's
/// partition semantics (each output cell averages its own input slab).
///
/// # Errors
///
/// Returns an error for non-NCHW input or a zero target size.
pub fn adaptive_avg_pool2d(input: &Tensor, out_h: usize, out_w: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw("adaptive_avg_pool2d", input)?;
    if out_h == 0 || out_w == 0 {
        return Err(invalid_argument(
            "adaptive_avg_pool2d",
            "output size must be nonzero".to_string(),
        ));
    }
    let mut out = Tensor::zeros(&[n, c, out_h, out_w]);
    let xd = input.data();
    let od = out.data_mut();
    for b in 0..n {
        for ch in 0..c {
            for oy in 0..out_h {
                let y0 = oy * h / out_h;
                let y1 = ((oy + 1) * h).div_ceil(out_h);
                for ox in 0..out_w {
                    let x0 = ox * w / out_w;
                    let x1 = ((ox + 1) * w).div_ceil(out_w);
                    let mut sum = 0.0;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            sum += xd[((b * c + ch) * h + iy) * w + ix];
                        }
                    }
                    let count = ((y1 - y0) * (x1 - x0)) as f32;
                    od[((b * c + ch) * out_h + oy) * out_w + ox] = sum / count;
                }
            }
        }
    }
    Ok(out)
}

/// Global average pooling: adaptive average pooling to 1x1, flattened to
/// `[n, c]`. Used by classification heads (e.g. ResNet-50).
///
/// # Errors
///
/// Returns an error for non-NCHW input.
pub fn global_avg_pool(input: &Tensor) -> Result<Tensor> {
    let (n, c, _, _) = check_nchw("global_avg_pool", input)?;
    let pooled = adaptive_avg_pool2d(input, 1, 1)?;
    pooled.reshape(&[n, c])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_picks_window_max() {
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0,
                16.0,
            ],
            &[1, 1, 4, 4],
        )
        .unwrap();
        let y = max_pool2d(&x, 2, 2, 0).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn max_pool_with_padding_matches_resnet_stem() {
        // ResNet stem: 3x3 max pool, stride 2, pad 1 on 112x112 -> 56x56.
        let x = Tensor::zeros(&[1, 1, 112, 112]);
        let y = max_pool2d(&x, 3, 2, 1).unwrap();
        assert_eq!(y.shape(), &[1, 1, 56, 56]);
    }

    #[test]
    fn adaptive_pool_identity_when_same_size() {
        let x = Tensor::rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, 13);
        let y = adaptive_avg_pool2d(&x, 3, 3).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn adaptive_pool_to_one_is_mean() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = adaptive_avg_pool2d(&x, 1, 1).unwrap();
        assert_eq!(y.data(), &[2.5]);
    }

    #[test]
    fn adaptive_pool_uneven_partition() {
        // 3 -> 2: cells cover rows {0,1} and {1,2}.
        let x = Tensor::from_vec(vec![0.0, 3.0, 6.0], &[1, 1, 3, 1]).unwrap();
        let y = adaptive_avg_pool2d(&x, 2, 1).unwrap();
        assert_eq!(y.data(), &[1.5, 4.5]);
    }

    #[test]
    fn global_avg_pool_flattens() {
        let x =
            Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0, 2.0, 4.0, 6.0, 8.0], &[1, 2, 2, 2]).unwrap();
        let y = global_avg_pool(&x).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[4.0, 5.0]);
    }
}
