//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s ergonomics: `lock()`
//! and `read()`/`write()` return guards directly (a poisoned lock is
//! recovered rather than propagated — a panicking worker must not wedge the
//! serving layer), and `Condvar::wait` takes `&mut MutexGuard`.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning API).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T: ?Sized> {
    // `Option` so `Condvar::wait` can move the std guard out and back while
    // holding only `&mut MutexGuard`.
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex guarding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard holds the lock")
    }
}

/// A reader-writer lock (non-poisoning API).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a lock guarding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the guarded value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self.inner.read().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self.inner.write().unwrap_or_else(|e| e.into_inner()),
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(e) => e.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Result of a timed [`Condvar`] wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`] (parking_lot-style API:
/// `wait` borrows the guard mutably instead of consuming it).
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks until notified, atomically releasing and re-acquiring the lock.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard holds the lock");
        let g = self.inner.wait(g).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(g);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard holds the lock");
        let (g, res) = match self.inner.wait_timeout(g, timeout) {
            Ok((g, res)) => (g, res),
            Err(e) => {
                let (g, res) = e.into_inner();
                (g, res)
            }
        };
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
        drop((a, b));
        *l.write() = 7;
        assert_eq!(*l.read(), 7);
    }

    #[test]
    fn condvar_signals_across_threads() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            *m.lock() = true;
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            let res = cv.wait_for(&mut done, Duration::from_secs(5));
            assert!(!res.timed_out(), "condvar wait timed out");
        }
        t.join().unwrap();
    }
}
