//! Scheduling policy: how remaining slack becomes a DRT budget, and when
//! a request is admissible at all.

use vit_drt::EngineCore;

/// How the scheduler chooses an execution path for each request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Deadline-aware DRT serving: the request's remaining slack at
    /// dispatch becomes the budget for the Pareto LUT lookup, so accuracy
    /// degrades gracefully under load instead of missing deadlines.
    DrtDynamic,
    /// Static baseline: always run the LUT entry at this index (clamped to
    /// the table), regardless of slack — how a conventional fixed-model
    /// server behaves. `usize::MAX` means "always the full model".
    Static {
        /// Index into the LUT, cheapest first.
        entry_index: usize,
    },
}

impl SchedulePolicy {
    /// The static full-model baseline.
    pub fn static_full() -> Self {
        SchedulePolicy::Static {
            entry_index: usize::MAX,
        }
    }
}

/// How the server reacts when an execution attempt fails (injected fault,
/// guard trip, or watchdog abort).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum RecoveryPolicy {
    /// Fail the request on its first fault — no retry, the request is
    /// lost. How a conventional server without fault handling behaves.
    FailFast,
    /// The self-healing policy: retry the request with its *remaining*
    /// slack as a tighter budget, so the Pareto LUT picks a cheaper
    /// configuration for the retry (the serving analog of the paper's
    /// graceful degradation), falling back `Plan → Interpret` after a
    /// plan-replay failure.
    DegradedRetry {
        /// Maximum re-attempts after the first failed one.
        max_retries: u32,
    },
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy::DegradedRetry { max_retries: 2 }
    }
}

impl RecoveryPolicy {
    /// Stable lower-snake name, used in report keys and trace details.
    pub fn name(self) -> &'static str {
        match self {
            RecoveryPolicy::FailFast => "fail_fast",
            RecoveryPolicy::DegradedRetry { .. } => "degraded_retry",
        }
    }

    /// Re-attempts allowed after a failed one (0 under fail-fast).
    pub fn max_retries(self) -> u32 {
        match self {
            RecoveryPolicy::FailFast => 0,
            RecoveryPolicy::DegradedRetry { max_retries } => max_retries,
        }
    }
}

/// Admission control: a request is admissible only when its remaining
/// slack (in LUT resource units) can still cover the cheapest execution
/// path. Shedding an inadmissible request immediately is strictly better
/// than queueing it: it cannot meet its deadline, and it would steal
/// worker time from requests that still can.
pub fn admissible(slack_units: f64, cheapest_cost_units: f64) -> bool {
    slack_units >= cheapest_cost_units
}

/// The budget (in LUT resource units) the policy hands to the engine for
/// a request with `slack_units` of remaining slack.
pub fn budget_for(policy: SchedulePolicy, core: &EngineCore, slack_units: f64) -> f64 {
    match policy {
        SchedulePolicy::DrtDynamic => slack_units,
        SchedulePolicy::Static { entry_index } => {
            let entries = core.lut().entries();
            let idx = entry_index.min(entries.len() - 1);
            // Budget exactly equal to the entry's cost selects it (lookup
            // maximizes accuracy among entries with resource <= budget).
            entries[idx].resource
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_is_a_threshold_on_cheapest_cost() {
        assert!(admissible(1.0, 0.5));
        assert!(admissible(0.5, 0.5));
        assert!(!admissible(0.49, 0.5));
        assert!(!admissible(-1.0, 0.5));
    }
}
