//! Property-based tests of Pareto extraction and the accuracy model.

use proptest::prelude::*;
use vit_models::{SegFormerDynamic, SegFormerVariant, SwinDynamic, SwinVariant};
use vit_resilience::{dominates, pareto_front, AccuracyModel, DynConfig, TradeoffPoint, Workload};

fn point(r: f64, a: f64) -> TradeoffPoint {
    TradeoffPoint {
        label: String::new(),
        config: DynConfig::SegFormer(SegFormerDynamic::full(&SegFormerVariant::b2())),
        resource: r,
        norm_resource: r,
        norm_miou: a,
    }
}

fn arb_points() -> impl Strategy<Value = Vec<TradeoffPoint>> {
    prop::collection::vec((0.01f64..2.0, 0.0f64..1.0), 1..60)
        .prop_map(|v| v.into_iter().map(|(r, a)| point(r, a)).collect())
}

fn arb_segformer_dynamic() -> impl Strategy<Value = SegFormerDynamic> {
    let v = SegFormerVariant::b2();
    (
        1usize..=v.depths[0],
        1usize..=v.depths[1],
        1usize..=v.depths[2],
        1usize..=v.depths[3],
        1usize..=(v.full_fuse_in() / 4),
        1usize..=v.decoder_dim,
        1usize..=v.embed_dims[0],
    )
        .prop_map(move |(d0, d1, d2, d3, q, fo, dl0)| SegFormerDynamic {
            depths: [d0, d1, d2, d3],
            fuse_in_channels: q * 4,
            fuse_out_channels: fo,
            decode_linear0_in: dl0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn front_points_are_mutually_nondominated(pts in arb_points()) {
        let front = pareto_front(&pts);
        for a in &front {
            for b in &front {
                prop_assert!(!dominates(a, b) || (a.norm_resource == b.norm_resource && a.norm_miou == b.norm_miou));
            }
        }
    }

    #[test]
    fn every_input_point_is_dominated_by_or_on_the_front(pts in arb_points()) {
        let front = pareto_front(&pts);
        for p in &pts {
            let covered = front.iter().any(|f| {
                f.norm_resource <= p.norm_resource && f.norm_miou >= p.norm_miou
            });
            prop_assert!(covered, "point ({}, {}) not covered", p.norm_resource, p.norm_miou);
        }
    }

    #[test]
    fn front_is_sorted_and_strictly_improving(pts in arb_points()) {
        let front = pareto_front(&pts);
        for w in front.windows(2) {
            prop_assert!(w[0].norm_resource < w[1].norm_resource);
            prop_assert!(w[0].norm_miou < w[1].norm_miou);
        }
    }

    #[test]
    fn front_is_idempotent(pts in arb_points()) {
        let once = pareto_front(&pts);
        let twice = pareto_front(&once);
        prop_assert_eq!(once.len(), twice.len());
    }

    #[test]
    fn accuracy_model_bounded_for_any_config(d in arb_segformer_dynamic()) {
        for workload in [Workload::SegFormerAde, Workload::SegFormerCityscapes] {
            let m = AccuracyModel::for_workload(workload);
            let v = SegFormerVariant::b2();
            let miou = m.norm_miou_segformer(&d, &v);
            prop_assert!((0.0..=1.02).contains(&miou), "{workload:?}: {miou}");
            let abs = m.absolute_miou(miou);
            prop_assert!((0.0..=1.0).contains(&abs));
        }
    }

    #[test]
    fn accuracy_model_full_config_dominates_any_pruned(d in arb_segformer_dynamic()) {
        let v = SegFormerVariant::b2();
        let m = AccuracyModel::for_workload(Workload::SegFormerAde);
        let full = m.norm_miou_segformer(&SegFormerDynamic::full(&v), &v);
        // Exception: the anchored 736-channel bonus region can exceed 1.0;
        // everything else must not beat the full model by more than that
        // anchored bonus.
        let miou = m.norm_miou_segformer(&d, &v);
        prop_assert!(miou <= full + 0.02, "pruned {miou} vs full {full}");
    }

    #[test]
    fn swin_accuracy_bounded(
        d2 in 1usize..=18,
        q in 1usize..=512,
    ) {
        let v = SwinVariant::base();
        let m = AccuracyModel::for_workload(Workload::SwinBaseAde);
        let d = SwinDynamic { depths: [2, 2, d2, 2], bottleneck_in_channels: q * 4 };
        let miou = m.norm_miou_swin(&d, &v);
        prop_assert!((0.0..=1.02).contains(&miou));
    }
}
