/root/repo/target/debug/deps/paper_claims-db6a67dbd89a9f45.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/debug/deps/paper_claims-db6a67dbd89a9f45: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
