//! Tests for pruning/data-movement ops: channel slicing, space-to-depth,
//! token concatenation, padded windowing, and deformable attention.

use vit_graph::{Executor, Graph, LayerRole, Op};
use vit_tensor::Tensor;

fn run_single(op: Op, input_shape: &[usize], input: Tensor) -> Tensor {
    let mut g = Graph::new("t");
    let x = g.input("in", input_shape).unwrap();
    let n = g.add("op", op, LayerRole::Other, &[x]).unwrap();
    g.set_output(n);
    Executor::new(0).run(&g, &[input]).unwrap()
}

#[test]
fn slice_channels_nchw_keeps_prefix() {
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 3, 1, 2]).unwrap();
    let y = run_single(Op::SliceChannels { keep: 2 }, &[1, 3, 1, 2], x);
    assert_eq!(y.shape(), &[1, 2, 1, 2]);
    assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn slice_channels_sequence_keeps_prefix_features() {
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[1, 2, 3]).unwrap();
    let y = run_single(Op::SliceChannels { keep: 2 }, &[1, 2, 3], x);
    assert_eq!(y.shape(), &[1, 2, 2]);
    assert_eq!(y.data(), &[1.0, 2.0, 4.0, 5.0]);
}

#[test]
fn slice_channels_rejects_zero_or_too_many() {
    let mut g = Graph::new("t");
    let x = g.input("in", &[1, 3, 2, 2]).unwrap();
    assert!(g
        .add("s0", Op::SliceChannels { keep: 0 }, LayerRole::Other, &[x])
        .is_err());
    assert!(g
        .add("s4", Op::SliceChannels { keep: 4 }, LayerRole::Other, &[x])
        .is_err());
}

#[test]
fn space_to_depth_rearranges() {
    // 2x2 image, 1 channel -> 4 channels of 1x1.
    let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
    let y = run_single(Op::SpaceToDepth { block: 2 }, &[1, 1, 2, 2], x);
    assert_eq!(y.shape(), &[1, 4, 1, 1]);
    assert_eq!(y.data(), &[1.0, 2.0, 3.0, 4.0]);
}

#[test]
fn space_to_depth_preserves_elements() {
    let x = Tensor::rand_uniform(&[2, 3, 8, 8], -1.0, 1.0, 3);
    let y = run_single(Op::SpaceToDepth { block: 4 }, &[2, 3, 8, 8], x.clone());
    assert_eq!(y.shape(), &[2, 48, 2, 2]);
    let mut a: Vec<f32> = x.data().to_vec();
    let mut b: Vec<f32> = y.data().to_vec();
    a.sort_by(f32::total_cmp);
    b.sort_by(f32::total_cmp);
    assert_eq!(a, b);
}

#[test]
fn concat_tokens_stacks_sequences() {
    let mut g = Graph::new("t");
    let a = g.input("a", &[1, 2, 3]).unwrap();
    let b = g.input("b", &[1, 1, 3]).unwrap();
    let c = g
        .add("cat", Op::ConcatTokens, LayerRole::Other, &[a, b])
        .unwrap();
    g.set_output(c);
    let ta = Tensor::from_vec(vec![1.0; 6], &[1, 2, 3]).unwrap();
    let tb = Tensor::from_vec(vec![2.0; 3], &[1, 1, 3]).unwrap();
    let out = Executor::new(0).run(&g, &[ta, tb]).unwrap();
    assert_eq!(out.shape(), &[1, 3, 3]);
    assert_eq!(&out.data()[..6], &[1.0; 6]);
    assert_eq!(&out.data()[6..], &[2.0; 3]);
}

#[test]
fn padded_window_partition_round_trips() {
    // 10x10 spatial with window 7 -> padded to 14x14, 4 windows.
    let mut g = Graph::new("t");
    let x = g.input("in", &[1, 2, 10, 10]).unwrap();
    let p = g
        .add(
            "part",
            Op::WindowPartition { window: 7 },
            LayerRole::Other,
            &[x],
        )
        .unwrap();
    assert_eq!(g.node(p).shape, vec![4, 49, 2]);
    let m = g
        .add(
            "merge",
            Op::WindowMerge {
                window: 7,
                h: 10,
                w: 10,
            },
            LayerRole::Other,
            &[p],
        )
        .unwrap();
    g.set_output(m);
    let input = Tensor::rand_uniform(&[1, 2, 10, 10], -1.0, 1.0, 5);
    let out = Executor::new(0)
        .run(&g, std::slice::from_ref(&input))
        .unwrap();
    assert_eq!(out, input);
}

#[test]
fn deform_attn_executes_with_expected_shape() {
    let mut g = Graph::new("t");
    let q = g.input("q", &[1, 6, 16]).unwrap();
    let v = g.input("v", &[1, 20, 16]).unwrap();
    let a = g
        .add(
            "dattn",
            Op::DeformAttn {
                heads: 4,
                levels: 2,
                points: 4,
                dim: 16,
            },
            LayerRole::DetTransformerEncoder,
            &[q, v],
        )
        .unwrap();
    g.set_output(a);
    let out = Executor::new(0)
        .run(
            &g,
            &[
                Tensor::rand_uniform(&[1, 6, 16], -1.0, 1.0, 1),
                Tensor::rand_uniform(&[1, 20, 16], -1.0, 1.0, 2),
            ],
        )
        .unwrap();
    assert_eq!(out.shape(), &[1, 6, 16]);
    assert!(out.data().iter().all(|x| x.is_finite()));
}

#[test]
fn deform_attn_flops_account_for_projections() {
    let op = Op::DeformAttn {
        heads: 8,
        levels: 4,
        points: 4,
        dim: 256,
    };
    let q = [1usize, 300, 256];
    let v = [1usize, 1000, 256];
    let out = op.infer_shape("d", &[&q, &v]).unwrap();
    let flops = op.flops(&[&q, &v], &out);
    let expect = 1000 * 256 * 256  // value proj
        + 300 * 256 * 256          // output proj
        + 300 * 256 * (4 * 4 * 3)  // offsets + weights
        + 300 * 4 * 4 * 256; // aggregation
    assert_eq!(flops, expect as u64);
}

#[test]
fn pruned_linear_after_slice_shares_prefix_weights() {
    // slice(keep=4) -> linear must equal the full linear restricted to the
    // first 4 input features (weights slice-consistent by construction).
    let mut g_full = Graph::new("m");
    let x = g_full.input("in", &[1, 1, 6]).unwrap();
    let l = g_full
        .add(
            "proj",
            Op::Linear {
                out_features: 3,
                bias: false,
            },
            LayerRole::Other,
            &[x],
        )
        .unwrap();
    g_full.set_output(l);

    let mut g_cut = Graph::new("m");
    let x2 = g_cut.input("in", &[1, 1, 6]).unwrap();
    let s = g_cut
        .add(
            "cut",
            Op::SliceChannels { keep: 4 },
            LayerRole::Other,
            &[x2],
        )
        .unwrap();
    let l2 = g_cut
        .add(
            "proj",
            Op::Linear {
                out_features: 3,
                bias: false,
            },
            LayerRole::Other,
            &[s],
        )
        .unwrap();
    g_cut.set_output(l2);

    // Feed an input whose last two features are zero: the full and the cut
    // graphs must then agree exactly.
    let mut data = vec![0.3, -0.7, 1.1, 0.9, 0.0, 0.0];
    let input = Tensor::from_vec(std::mem::take(&mut data), &[1, 1, 6]).unwrap();
    let full = Executor::new(9)
        .run(&g_full, std::slice::from_ref(&input))
        .unwrap();
    let cut = Executor::new(9).run(&g_cut, &[input]).unwrap();
    for (a, b) in full.data().iter().zip(cut.data().iter()) {
        assert!((a - b).abs() < 1e-6);
    }
}

#[test]
fn one_executor_serves_graphs_of_different_widths() {
    // Regression test: a single executor's weight cache must not leak a
    // narrow layer's weights into a wider graph that shares node names.
    let build = |out: usize| {
        let mut g = Graph::new("m");
        let x = g.input("in", &[1, 1, 6]).unwrap();
        let l = g
            .add(
                "proj",
                Op::Linear {
                    out_features: out,
                    bias: true,
                },
                LayerRole::Other,
                &[x],
            )
            .unwrap();
        g.set_output(l);
        g
    };
    let narrow = build(4);
    let wide = build(8);
    let mut ex = Executor::new(3);
    let input = Tensor::rand_uniform(&[1, 1, 6], -1.0, 1.0, 1);
    let a = ex.run(&narrow, std::slice::from_ref(&input)).unwrap();
    let b = ex.run(&wide, std::slice::from_ref(&input)).unwrap();
    let c = ex.run(&narrow, &[input]).unwrap();
    assert_eq!(a.shape(), &[1, 1, 4]);
    assert_eq!(b.shape(), &[1, 1, 8]);
    assert_eq!(a, c);
    // Shared prefix weights: the first 4 outputs agree.
    for i in 0..4 {
        assert!((a.data()[i] - b.data()[i]).abs() < 1e-6);
    }
}
