/root/repo/target/debug/deps/vit_tensor-9e27f95e1326290b.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libvit_tensor-9e27f95e1326290b.rlib: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libvit_tensor-9e27f95e1326290b.rmeta: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/resize.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/tensor.rs:
