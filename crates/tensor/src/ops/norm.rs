//! Normalization layers in inference form: LayerNorm and BatchNorm.

use crate::error::{invalid_shape, shape_mismatch, Result};
use crate::tensor::Tensor;

/// Layer normalization over the last dimension with learned scale and shift.
///
/// `input` is `[..., features]`; `gamma` and `beta` are `[features]`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] when `gamma`/`beta` do not
/// match the last dimension.
pub fn layer_norm(input: &Tensor, gamma: &Tensor, beta: &Tensor, eps: f32) -> Result<Tensor> {
    let features = *input.shape().last().ok_or_else(|| {
        invalid_shape(
            "layer_norm",
            "input must have at least one dimension".to_string(),
        )
    })?;
    if gamma.numel() != features || beta.numel() != features {
        return Err(shape_mismatch(
            "layer_norm",
            format!("gamma/beta of {features} elements"),
            format!("{:?} / {:?}", gamma.shape(), beta.shape()),
        ));
    }
    let rows = input.numel() / features;
    let mut out = input.clone();
    let data = out.data_mut();
    let g = gamma.data();
    let b = beta.data();
    for r in 0..rows {
        let row = &mut data[r * features..(r + 1) * features];
        let mean: f32 = row.iter().sum::<f32>() / features as f32;
        let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / features as f32;
        let inv = 1.0 / (var + eps).sqrt();
        for (i, v) in row.iter_mut().enumerate() {
            *v = (*v - mean) * inv * g[i] + b[i];
        }
    }
    Ok(out)
}

/// Batch normalization in inference form: a per-channel affine transform of
/// an NCHW tensor using precomputed statistics.
///
/// `scale[c] = gamma[c] / sqrt(var[c] + eps)` and
/// `shift[c] = beta[c] - mean[c] * scale[c]` are expected to be folded by the
/// caller; this kernel applies `y = x * scale[c] + shift[c]`.
///
/// # Errors
///
/// Returns [`crate::TensorError::ShapeMismatch`] when `scale`/`shift` do not
/// match the channel count, or the input is not rank 4.
pub fn batch_norm_inference(input: &Tensor, scale: &Tensor, shift: &Tensor) -> Result<Tensor> {
    if input.rank() != 4 {
        return Err(invalid_shape(
            "batch_norm",
            format!("expected NCHW rank-4 tensor, got {:?}", input.shape()),
        ));
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    if scale.numel() != c || shift.numel() != c {
        return Err(shape_mismatch(
            "batch_norm",
            format!("scale/shift of {c} elements"),
            format!("{:?} / {:?}", scale.shape(), shift.shape()),
        ));
    }
    let mut out = input.clone();
    let data = out.data_mut();
    let sc = scale.data();
    let sh = shift.data();
    for b in 0..n {
        for ch in 0..c {
            let base = (b * c + ch) * h * w;
            for i in 0..h * w {
                data[base + i] = data[base + i] * sc[ch] + sh[ch];
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let t = Tensor::rand_uniform(&[4, 16], -3.0, 3.0, 21);
        let g = Tensor::ones(&[16]);
        let b = Tensor::zeros(&[16]);
        let n = layer_norm(&t, &g, &b, 1e-5).unwrap();
        for r in 0..4 {
            let row = &n.data()[r * 16..(r + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_applies_gamma_beta() {
        let t = Tensor::from_vec(vec![1.0, -1.0], &[1, 2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![10.0, 10.0], &[2]).unwrap();
        let n = layer_norm(&t, &g, &b, 1e-9).unwrap();
        // Normalized values are +1 and -1, so output is 12 and 8.
        assert!((n.data()[0] - 12.0).abs() < 1e-3);
        assert!((n.data()[1] - 8.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_rejects_bad_params() {
        let t = Tensor::zeros(&[2, 4]);
        let g = Tensor::zeros(&[3]);
        let b = Tensor::zeros(&[4]);
        assert!(layer_norm(&t, &g, &b, 1e-5).is_err());
    }

    #[test]
    fn batch_norm_is_per_channel_affine() {
        let x = Tensor::ones(&[1, 2, 2, 2]);
        let scale = Tensor::from_vec(vec![2.0, 0.5], &[2]).unwrap();
        let shift = Tensor::from_vec(vec![1.0, -1.0], &[2]).unwrap();
        let y = batch_norm_inference(&x, &scale, &shift).unwrap();
        for i in 0..4 {
            assert_eq!(y.data()[i], 3.0); // channel 0: 1*2+1
            assert_eq!(y.data()[4 + i], -0.5); // channel 1: 1*0.5-1
        }
    }

    #[test]
    fn batch_norm_rejects_non_nchw() {
        let x = Tensor::zeros(&[2, 3]);
        let s = Tensor::zeros(&[3]);
        assert!(batch_norm_inference(&x, &s, &s).is_err());
    }
}
