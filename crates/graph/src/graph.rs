//! The execution graph: a DAG of named, typed layer nodes with inferred
//! shapes.

use crate::op::{GraphError, LayerRole, Op, OpClass};
use serde::{Deserialize, Serialize};

/// Identifier of a node within its [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The underlying index (nodes are stored in topological insertion
    /// order).
    pub fn index(&self) -> usize {
        self.0
    }

    /// A `NodeId` for a raw index, for tooling that reassembles graphs from
    /// untrusted sources (see [`Graph::from_raw_parts`]). Ids built this way
    /// carry no validity guarantee until the graph is verified.
    pub fn from_index(index: usize) -> Self {
        NodeId(index)
    }
}

/// One layer in the graph.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Node {
    /// Hierarchical dot-separated name, e.g.
    /// `encoder.stage0.block1.attn.sdpa`.
    pub name: String,
    /// The operator.
    pub op: Op,
    /// Functional role for paper-style aggregation.
    pub role: LayerRole,
    /// Input edges (earlier nodes only; the graph is built topologically).
    pub inputs: Vec<NodeId>,
    /// Inferred output shape.
    pub shape: Vec<usize>,
}

impl Node {
    /// FLOPs of this node.
    pub fn flops(&self, graph: &Graph) -> u64 {
        let in_shapes: Vec<&[usize]> = self
            .inputs
            .iter()
            .map(|id| graph.node(*id).shape.as_slice())
            .collect();
        self.op.flops(&in_shapes, &self.shape)
    }

    /// Parameter count of this node.
    pub fn params(&self, graph: &Graph) -> u64 {
        let in_shapes: Vec<&[usize]> = self
            .inputs
            .iter()
            .map(|id| graph.node(*id).shape.as_slice())
            .collect();
        self.op.params(&in_shapes)
    }
}

/// A static execution graph for one model configuration at one input size.
///
/// Nodes are appended in topological order; a node may only consume
/// previously-added nodes, which makes cycles unrepresentable.
///
/// # Examples
///
/// ```
/// use vit_graph::{Graph, Op, LayerRole};
///
/// # fn main() -> Result<(), vit_graph::GraphError> {
/// let mut g = Graph::new("tiny");
/// let x = g.input("image", &[1, 3, 8, 8])?;
/// let conv = g.add(
///     "stem",
///     Op::Conv2d {
///         out_channels: 4,
///         kernel: (3, 3),
///         stride: (1, 1),
///         pad: (1, 1),
///         groups: 1,
///         bias: true,
///     },
///     LayerRole::Backbone,
///     &[x],
/// )?;
/// g.set_output(conv);
/// assert_eq!(g.node(conv).shape, vec![1, 4, 8, 8]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Graph {
    /// Model name, e.g. `segformer-b2`.
    pub model: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    output: Option<NodeId>,
}

impl Graph {
    /// Creates an empty graph for the named model.
    pub fn new(model: impl Into<String>) -> Self {
        Graph {
            model: model.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            output: None,
        }
    }

    /// Adds a graph input with a fixed shape.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when a node with the same name exists.
    pub fn input(&mut self, name: &str, shape: &[usize]) -> Result<NodeId, GraphError> {
        let id = self.add(
            name,
            Op::Input {
                shape: shape.to_vec(),
            },
            LayerRole::Other,
            &[],
        )?;
        self.inputs.push(id);
        Ok(id)
    }

    /// Adds a node, inferring its output shape.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] when the name is duplicated, an input id is
    /// unknown, or shape inference fails.
    pub fn add(
        &mut self,
        name: &str,
        op: Op,
        role: LayerRole,
        inputs: &[NodeId],
    ) -> Result<NodeId, GraphError> {
        if self.nodes.iter().any(|n| n.name == name) {
            return Err(GraphError {
                node: name.to_string(),
                msg: "duplicate node name".to_string(),
            });
        }
        for id in inputs {
            if id.0 >= self.nodes.len() {
                return Err(GraphError {
                    node: name.to_string(),
                    msg: format!("unknown input node id {}", id.0),
                });
            }
        }
        let in_shapes: Vec<&[usize]> = inputs
            .iter()
            .map(|id| self.nodes[id.0].shape.as_slice())
            .collect();
        let shape = op.infer_shape(name, &in_shapes)?;
        let id = NodeId(self.nodes.len());
        self.nodes.push(Node {
            name: name.to_string(),
            op,
            role,
            inputs: inputs.to_vec(),
            shape,
        });
        Ok(id)
    }

    /// Reassembles a graph from raw parts **without any validation** —
    /// the escape hatch for deserializers and verification tooling that
    /// must be able to represent malformed graphs (the normal builder,
    /// [`Graph::add`], makes them unconstructible). Run
    /// [`Graph::check_invariants`] (or the full `vit-verify` pass) before
    /// trusting the result.
    pub fn from_raw_parts(
        model: impl Into<String>,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        output: Option<NodeId>,
    ) -> Self {
        Graph {
            model: model.into(),
            nodes,
            inputs,
            output,
        }
    }

    /// Re-checks the structural invariants [`Graph::add`] establishes:
    /// unique node names, topologically ordered input edges, in-range
    /// input/output ids, operator arity, and stored shapes equal to
    /// re-inferred shapes. Graphs built through the public builder always
    /// pass; graphs from [`Graph::from_raw_parts`] may not.
    ///
    /// This is the cheap structural gate the DRT engine runs in debug
    /// builds; the `vit-verify` crate layers full multi-code diagnostics
    /// on top.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as a [`GraphError`].
    pub fn check_invariants(&self) -> Result<(), GraphError> {
        let mut seen = std::collections::HashSet::with_capacity(self.nodes.len());
        for (i, n) in self.nodes.iter().enumerate() {
            if !seen.insert(n.name.as_str()) {
                return Err(GraphError {
                    node: n.name.clone(),
                    msg: "duplicate node name".to_string(),
                });
            }
            for id in &n.inputs {
                if id.0 >= i {
                    return Err(GraphError {
                        node: n.name.clone(),
                        msg: format!(
                            "input edge to node {} breaks topological order (node index {i})",
                            id.0
                        ),
                    });
                }
            }
            let in_shapes: Vec<&[usize]> = n
                .inputs
                .iter()
                .map(|id| self.nodes[id.0].shape.as_slice())
                .collect();
            let inferred = n.op.infer_shape(&n.name, &in_shapes)?;
            if inferred != n.shape {
                return Err(GraphError {
                    node: n.name.clone(),
                    msg: format!(
                        "stored shape {:?} disagrees with re-inferred shape {inferred:?}",
                        n.shape
                    ),
                });
            }
        }
        for id in &self.inputs {
            let node = self.nodes.get(id.0).ok_or_else(|| GraphError {
                node: format!("input #{}", id.0),
                msg: "graph input id out of range".to_string(),
            })?;
            if !matches!(node.op, Op::Input { .. }) {
                return Err(GraphError {
                    node: node.name.clone(),
                    msg: "graph input list points at a non-input node".to_string(),
                });
            }
        }
        if let Some(out) = self.output {
            if out.0 >= self.nodes.len() {
                return Err(GraphError {
                    node: format!("output #{}", out.0),
                    msg: "graph output id out of range".to_string(),
                });
            }
        }
        Ok(())
    }

    /// Marks the graph output.
    pub fn set_output(&mut self, id: NodeId) {
        self.output = Some(id);
    }

    /// The graph output node, if set.
    pub fn output(&self) -> Option<NodeId> {
        self.output
    }

    /// The graph input nodes.
    pub fn input_ids(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Node by id.
    ///
    /// # Panics
    ///
    /// Panics when the id does not belong to this graph.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0]
    }

    /// All nodes in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterator of `(NodeId, &Node)` in topological order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes.iter().enumerate().map(|(i, n)| (NodeId(i), n))
    }

    /// Finds a node by exact name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.nodes.iter().position(|n| n.name == name).map(NodeId)
    }

    /// Total FLOPs of the whole graph.
    pub fn total_flops(&self) -> u64 {
        self.iter().map(|(_, n)| n.flops(self)).sum()
    }

    /// Total parameter count of the whole graph.
    pub fn total_params(&self) -> u64 {
        self.iter().map(|(_, n)| n.params(self)).sum()
    }

    /// Total FLOPs restricted to one operator class.
    pub fn flops_by_class(&self, class: OpClass) -> u64 {
        self.iter()
            .filter(|(_, n)| n.op.class() == class)
            .map(|(_, n)| n.flops(self))
            .sum()
    }

    /// Total FLOPs of nodes whose role is in the decoder.
    pub fn decoder_flops(&self) -> u64 {
        self.iter()
            .filter(|(_, n)| n.role.is_decoder())
            .map(|(_, n)| n.flops(self))
            .sum()
    }

    /// Reference count of every node (how many consumers it has, plus one
    /// for the graph output). Used by the executor to free intermediates.
    pub fn consumer_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for n in &self.nodes {
            for id in &n.inputs {
                counts[id.0] += 1;
            }
        }
        if let Some(out) = self.output {
            counts[out.0] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(out: usize) -> Op {
        Op::Conv2d {
            out_channels: out,
            kernel: (3, 3),
            stride: (1, 1),
            pad: (1, 1),
            groups: 1,
            bias: false,
        }
    }

    #[test]
    fn build_linear_chain() {
        let mut g = Graph::new("chain");
        let x = g.input("in", &[1, 3, 8, 8]).unwrap();
        let a = g.add("conv1", conv(8), LayerRole::Backbone, &[x]).unwrap();
        let b = g.add("conv2", conv(16), LayerRole::Backbone, &[a]).unwrap();
        g.set_output(b);
        assert_eq!(g.len(), 3);
        assert_eq!(g.node(b).shape, vec![1, 16, 8, 8]);
        assert_eq!(g.output(), Some(b));
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut g = Graph::new("dup");
        g.input("in", &[1, 1, 2, 2]).unwrap();
        assert!(g.input("in", &[1, 1, 2, 2]).is_err());
    }

    #[test]
    fn unknown_input_rejected() {
        let mut g = Graph::new("bad");
        let err = g
            .add("orphan", conv(1), LayerRole::Other, &[NodeId(5)])
            .unwrap_err();
        assert!(err.msg.contains("unknown input"));
    }

    #[test]
    fn shape_error_propagates_node_name() {
        let mut g = Graph::new("bad-shape");
        let x = g.input("in", &[1, 3, 2, 2]).unwrap();
        // 7x7 kernel on an unpadded 2x2 image cannot work.
        let op = Op::Conv2d {
            out_channels: 4,
            kernel: (7, 7),
            stride: (1, 1),
            pad: (0, 0),
            groups: 1,
            bias: false,
        };
        let err = g.add("stem", op, LayerRole::Backbone, &[x]).unwrap_err();
        assert_eq!(err.node, "stem");
    }

    #[test]
    fn flops_aggregation_by_class() {
        let mut g = Graph::new("agg");
        let x = g.input("in", &[1, 4, 4, 4]).unwrap();
        let c = g.add("conv", conv(4), LayerRole::Backbone, &[x]).unwrap();
        let r = g.add("relu", Op::Relu, LayerRole::Backbone, &[c]).unwrap();
        g.set_output(r);
        let conv_flops = g.flops_by_class(OpClass::Conv);
        let elem_flops = g.flops_by_class(OpClass::Elementwise);
        assert_eq!(conv_flops, 4 * 4 * 4 * 4 * 9);
        assert_eq!(elem_flops, 4 * 4 * 4);
        assert_eq!(g.total_flops(), conv_flops + elem_flops);
    }

    #[test]
    fn consumer_counts_include_output() {
        let mut g = Graph::new("rc");
        let x = g.input("in", &[1, 1, 2, 2]).unwrap();
        let a = g.add("id1", Op::Identity, LayerRole::Other, &[x]).unwrap();
        let b = g.add("id2", Op::Identity, LayerRole::Other, &[x]).unwrap();
        let s = g.add("sum", Op::Add, LayerRole::Other, &[a, b]).unwrap();
        g.set_output(s);
        let counts = g.consumer_counts();
        assert_eq!(counts[x.index()], 2);
        assert_eq!(counts[a.index()], 1);
        assert_eq!(counts[s.index()], 1);
    }

    #[test]
    fn find_by_name() {
        let mut g = Graph::new("find");
        let x = g.input("image", &[1, 1, 2, 2]).unwrap();
        assert_eq!(g.find("image"), Some(x));
        assert_eq!(g.find("missing"), None);
    }
}
