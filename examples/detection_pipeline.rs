//! Object-detection pipeline study: DETR / Deformable DETR profiling and
//! the OFA ResNet-50 dynamic backbone on the accelerator.
//!
//! ```text
//! cargo run --release --example detection_pipeline
//! ```

use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_graph::Executor;
use vit_models::{
    backbone_transformer_split, build_deformable_detr, build_detr, ofa_family, DetrConfig,
};
use vit_profiler::GpuModel;
use vit_tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let gpu = GpuModel::titan_v();

    // 1. Where does detection compute go? (paper §II-A)
    for (name, g) in [
        ("DETR", build_detr(&DetrConfig::detr_coco())?),
        (
            "Deformable DETR",
            build_deformable_detr(&DetrConfig::deformable_coco())?,
        ),
    ] {
        let (backbone, transformer) = backbone_transformer_split(&g);
        println!(
            "{name}: {:.1} GFLOPs total; backbone {:.1}% of FLOPs; modeled latency {:.1} ms",
            g.total_flops() as f64 / 1e9,
            100.0 * backbone as f64 / (backbone + transformer) as f64,
            gpu.total_time(&g) * 1e3
        );
    }
    println!();

    // 2. Execute DETR end-to-end at a small size: image + learned object
    //    queries in, box predictions out.
    let small = DetrConfig::detr_coco().with_image(64, 64);
    let g = build_detr(&small)?;
    let mut exec = Executor::new(0);
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 1);
    let queries = Tensor::rand_uniform(&[1, 100, 256], -0.5, 0.5, 2);
    let boxes = exec.run(&g, &[image, queries])?;
    println!(
        "DETR @ 64x64 executed: {} predicted boxes, first box (cx, cy, w, h) = \
         ({:.2}, {:.2}, {:.2}, {:.2})",
        boxes.shape()[1],
        boxes.at(&[0, 0, 0]),
        boxes.at(&[0, 0, 1]),
        boxes.at(&[0, 0, 2]),
        boxes.at(&[0, 0, 3])
    );
    println!();

    // 3. The dynamic backbone: the OFA ResNet-50 family on accelerator_OFA2
    //    (the paper's Figure 16 experiment).
    let opts = SimOptions::default();
    println!("OFA ResNet-50 family @ 640x480 on accelerator_OFA2:");
    let mut first_cycles = None;
    for subnet in ofa_family() {
        let backbone = subnet.build_backbone((480, 640), 1)?;
        let r = simulate(&backbone.graph, &AccelConfig::ofa2(), &opts);
        let cycles = r.total_cycles();
        let base = *first_cycles.get_or_insert(cycles);
        println!(
            "  {:<24} top-1 {:>5.1}  {:>9} cycles ({:>3.0}% of largest)",
            subnet.label,
            subnet.top1,
            cycles,
            100.0 * cycles as f64 / base as f64
        );
    }
    println!();
    println!(
        "the family spans a >2x cycle range with a few points of accuracy — \
         the dynamic real-time knob for detection (paper: 57% time saving, <5% drop)."
    );
    Ok(())
}
