//! The threaded serving loop: bounded ingress, EDF scheduler, worker pool
//! over one shared [`EngineCore`].

use crate::metrics::ServerMetrics;
use crate::policy::{admissible, budget_for, RecoveryPolicy, SchedulePolicy};
use crate::queue::{EdfQueue, PopResult, PushError};
use crate::request::{
    FailureReason, FailureRecord, InferenceRequest, Outcome, RequestRecord, ShedReason,
};
use crossbeam::channel::{self, TrySendError};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;
use vit_drt::{EngineCore, EngineError};
use vit_fault::{FaultCtx, FaultError, FaultPlan, GuardConfig};
use vit_graph::{ExecBackend, ExecOptions, ExecScratch, RunContext};
use vit_resilience::ResourceKind;
use vit_tensor::Tensor;
use vit_trace::{now_ns, EventKind, Phase as TracePhase, RecoveryAction};

/// Maps the LUT's abstract resource units onto wall-clock seconds on this
/// machine, so absolute deadlines can be converted into LUT budgets.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured wall seconds per LUT resource unit.
    pub secs_per_unit: f64,
}

/// Timed runs averaged by [`Calibration::measure`]; a single-run
/// measurement is far too noisy on shared CI machines.
pub const CALIBRATION_RUNS: usize = 3;

impl Calibration {
    /// Measures the machine: runs the full (most expensive) execution path
    /// once to warm its graph and weight caches, times
    /// [`CALIBRATION_RUNS`] further runs, and divides their average by the
    /// path's LUT cost.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when a calibration inference fails.
    pub fn measure(core: &Arc<EngineCore>) -> Result<Self, EngineError> {
        Self::measure_with(core, &RunContext::default())
    }

    /// [`Calibration::measure`] under an explicit [`RunContext`], so the
    /// calibration reflects the execution mode (and trace sink) the server
    /// will use.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when a calibration inference fails.
    pub fn measure_with(core: &Arc<EngineCore>, ctx: &RunContext) -> Result<Self, EngineError> {
        let mut scratch = ExecScratch::new();
        let (h, w) = core.image_size();
        let image = Tensor::rand_uniform(&[1, 3, h, w], 0.0, 1.0, 1);
        let full = core
            .lut()
            .entries()
            .last()
            .expect("EngineCore guarantees a non-empty LUT")
            .clone();
        core.run(&mut scratch, &image, full.clone(), true, ctx)?; // warm caches
        let resource = full.resource;
        Self::from_timed_runs(
            &mut || {
                let t0 = Instant::now();
                core.run(&mut scratch, &image, full.clone(), true, ctx)?;
                Ok(t0.elapsed().as_secs_f64())
            },
            CALIBRATION_RUNS,
            resource,
        )
    }

    /// Builds a calibration by averaging `runs` invocations of
    /// `timed_run` (each returning one measured duration in seconds) over
    /// an execution path costing `resource_units`. Split out from
    /// [`Calibration::measure`] so the averaging is unit-testable with a
    /// fake clock.
    ///
    /// # Errors
    ///
    /// Propagates the first error `timed_run` returns.
    ///
    /// # Panics
    ///
    /// Panics when `runs` is zero or `resource_units` is not positive.
    pub fn from_timed_runs<E>(
        timed_run: &mut dyn FnMut() -> Result<f64, E>,
        runs: usize,
        resource_units: f64,
    ) -> Result<Self, E> {
        assert!(runs >= 1, "calibration needs at least one timed run");
        assert!(
            resource_units > 0.0,
            "calibration path must have positive cost"
        );
        let mut total = 0.0;
        for _ in 0..runs {
            total += timed_run()?.max(0.0);
        }
        let secs = (total / runs as f64).max(1e-9);
        Ok(Calibration {
            secs_per_unit: secs / resource_units,
        })
    }

    /// A calibration from a known rate (e.g. for simulations).
    pub fn from_secs_per_unit(secs_per_unit: f64) -> Self {
        assert!(secs_per_unit > 0.0, "calibration rate must be positive");
        Calibration { secs_per_unit }
    }

    /// Seconds → LUT resource units.
    pub fn units(&self, secs: f64) -> f64 {
        secs / self.secs_per_unit
    }

    /// LUT resource units → seconds.
    pub fn secs(&self, units: f64) -> f64 {
        units * self.secs_per_unit
    }
}

/// Server topology and scheduling configuration.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads sharing the engine core.
    pub workers: usize,
    /// Capacity of the ingress channel and of the EDF queue (each stage
    /// holds at most this many requests).
    pub queue_depth: usize,
    /// The resource dimension deadlines are stated in; requests with a
    /// different kind are rejected.
    pub resource_kind: ResourceKind,
    /// How budgets are chosen.
    pub policy: SchedulePolicy,
    /// Total threads of the intra-inference execution pool shared by all
    /// workers (1 = each worker runs its inference sequentially). One pool
    /// is shared so concurrent inferences cooperate on the machine's cores
    /// instead of oversubscribing them `workers ×`.
    pub exec_threads: usize,
    /// Run inferences by replaying compiled execution plans
    /// ([`ExecBackend::Plan`]) instead of interpreting graphs. Outputs are
    /// bit-identical either way; plans trade a one-time per-config
    /// compilation (cached in the shared [`EngineCore`]) for lower
    /// per-inference overhead.
    pub use_plans: bool,
    /// Deterministic fault injection plan. `None` (the default) serves
    /// cleanly — workers still run the output guard, but no faults are
    /// drawn. With a plan, every attempt is armed with
    /// `(plan, request seq, attempt)` so a chaos run replays byte-for-byte
    /// regardless of thread interleaving.
    pub fault: Option<FaultPlan>,
    /// What workers do when an attempt faults.
    pub recovery: RecoveryPolicy,
    /// Watchdog allowance as a multiple of the selected entry's expected
    /// execution time. The threaded server cannot abort a running
    /// inference, so an overrun is *observed* (a `watchdog` detection
    /// event) rather than enforced; the discrete-event simulator models
    /// the true abort.
    pub watchdog_grace: f64,
    /// Consecutive failures on one worker that open its circuit breaker.
    /// An open breaker forces that worker onto the conservative
    /// [`ExecBackend::Interpret`] path until a success closes it; when
    /// every worker's breaker is open, [`Server::submit`] refuses new work.
    pub breaker_threshold: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 4,
            queue_depth: 64,
            resource_kind: ResourceKind::GpuTime,
            policy: SchedulePolicy::DrtDynamic,
            exec_threads: 1,
            use_plans: false,
            fault: None,
            recovery: RecoveryPolicy::default(),
            watchdog_grace: 4.0,
            breaker_threshold: 3,
        }
    }
}

/// Error from [`Server::submit`] for requests the server cannot interpret
/// (as opposed to load shedding, which is a recorded outcome, not an
/// error).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The request's resource kind does not match the server's LUT.
    WrongResourceKind {
        /// Kind the server was configured with.
        expected: ResourceKind,
        /// Kind the request carried.
        got: ResourceKind,
    },
    /// Every worker's circuit breaker is open: the server is refusing new
    /// work until at least one worker completes a request cleanly.
    AllWorkersUnhealthy {
        /// The server's worker count (all with open breakers).
        workers: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::WrongResourceKind { expected, got } => write!(
                f,
                "request resource kind {got:?} does not match server LUT kind {expected:?}"
            ),
            SubmitError::AllWorkersUnhealthy { workers } => write!(
                f,
                "all {workers} worker circuit breakers are open; refusing new work"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

struct Submitted {
    image: Tensor,
    deadline: Instant,
    submitted_at: Instant,
    /// Trace-epoch stamp of the submission, for queue-wait spans. Zero
    /// when tracing is disabled (never recorded in that case).
    submitted_ns: u64,
    /// Submission sequence number — the deterministic `run` identity for
    /// fault draws, independent of which worker dispatches the request.
    seq: u64,
}

/// A running deadline-aware inference server.
///
/// Requests flow `submit` → bounded ingress channel → EDF queue → worker
/// pool. Admission control sheds requests that cannot possibly meet their
/// deadline; the bounded stages shed on overload; every submitted request
/// ends up in exactly one [`Outcome`].
pub struct Server {
    ingress: Option<channel::Sender<Submitted>>,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    outcomes: Arc<Mutex<Vec<Outcome>>>,
    core: Arc<EngineCore>,
    calibration: Calibration,
    config: ServerConfig,
    ctx: RunContext,
    next_seq: AtomicU64,
    open_breakers: Arc<AtomicUsize>,
}

impl Server {
    /// Spawns the scheduler and worker threads and starts serving, with
    /// the intra-inference execution pool sized by `config.exec_threads`
    /// and tracing disabled.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start(core: Arc<EngineCore>, calibration: Calibration, config: ServerConfig) -> Self {
        let backend = if config.use_plans {
            ExecBackend::Plan
        } else {
            ExecBackend::Interpret
        };
        let ctx = RunContext::default()
            .with_exec(ExecOptions::threaded(config.exec_threads).with_backend(backend));
        Self::start_with(core, calibration, config, ctx)
    }

    /// [`Server::start`] under an explicit [`RunContext`]: the context's
    /// execution options replace `config.exec_threads` (cloning the
    /// context clones the pool handle, so all workers still share one
    /// pool), and its trace sink observes the serving path — queue-wait
    /// spans, admission and shed markers, and every engine span the
    /// workers' inferences emit.
    ///
    /// # Panics
    ///
    /// Panics when `config.workers` or `config.queue_depth` is zero.
    pub fn start_with(
        core: Arc<EngineCore>,
        calibration: Calibration,
        config: ServerConfig,
        ctx: RunContext,
    ) -> Self {
        assert!(config.workers > 0, "server needs at least one worker");
        let (tx, rx) = channel::bounded::<Submitted>(config.queue_depth);
        let queue: Arc<EdfQueue<Instant, Submitted>> =
            Arc::new(EdfQueue::bounded(config.queue_depth));
        let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));

        // Scheduler: moves admitted requests from the ingress channel into
        // the EDF queue (blocking when the queue is full, which backs
        // pressure up into the bounded channel and from there into sheds).
        let scheduler = {
            let queue = queue.clone();
            std::thread::spawn(move || {
                while let Ok(sub) = rx.recv() {
                    if matches!(queue.push(sub.deadline, sub), Err(PushError::Closed)) {
                        break;
                    }
                }
                queue.close();
            })
        };

        // One execution pool shared (via `Arc`) by every worker: cloning
        // the `RunContext` clones the pool handle and the sink handle, not
        // the threads or the sink's buffer.
        let open_breakers: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        let workers = (0..config.workers)
            .map(|_| {
                let queue = queue.clone();
                let outcomes = outcomes.clone();
                let core = core.clone();
                let spu = calibration.secs_per_unit;
                let ctx = ctx.clone();
                let open_breakers = open_breakers.clone();
                std::thread::spawn(move || {
                    let mut scratch = ExecScratch::new();
                    // Per-worker health: consecutive failures and whether
                    // this worker's circuit breaker is currently open.
                    let mut consecutive_failures: usize = 0;
                    let mut breaker_open = false;
                    while let PopResult::Item((deadline, sub)) = queue.pop() {
                        let now = Instant::now();
                        let traced = ctx.trace_enabled();
                        if traced {
                            ctx.sink.record(EventKind::Phase {
                                phase: TracePhase::QueueWait,
                                detail: String::new(),
                                start_ns: sub.submitted_ns,
                                end_ns: now_ns(),
                            });
                        }
                        let queue_wait = now.duration_since(sub.submitted_at).as_secs_f64();
                        serve_request(
                            &core,
                            &ctx,
                            &config,
                            &mut scratch,
                            &outcomes,
                            &open_breakers,
                            &mut consecutive_failures,
                            &mut breaker_open,
                            spu,
                            deadline,
                            &sub,
                            queue_wait,
                        );
                    }
                    // A worker that exits with its breaker open must not
                    // leave the shared count pinned.
                    if breaker_open {
                        open_breakers.fetch_sub(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();

        Server {
            ingress: Some(tx),
            scheduler: Some(scheduler),
            workers,
            outcomes,
            core,
            calibration,
            config,
            ctx,
            next_seq: AtomicU64::new(0),
            open_breakers,
        }
    }

    /// The shared engine core this server runs on.
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// How many workers currently have an open circuit breaker.
    pub fn open_breakers(&self) -> usize {
        self.open_breakers.load(Ordering::Relaxed)
    }

    /// The wall-clock calibration in use.
    pub fn calibration(&self) -> Calibration {
        self.calibration
    }

    /// The execution context (options + trace sink) the workers run with.
    pub fn run_context(&self) -> &RunContext {
        &self.ctx
    }

    /// Offers a request. Returns `Ok(true)` when the request was admitted
    /// and queued, `Ok(false)` when it was shed (recorded in the metrics
    /// with its reason).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] for a request whose resource kind does not
    /// match the server's LUT; such a request is *not* counted as shed.
    pub fn submit(&self, request: InferenceRequest) -> Result<bool, SubmitError> {
        if request.resource_kind != self.config.resource_kind {
            return Err(SubmitError::WrongResourceKind {
                expected: self.config.resource_kind,
                got: request.resource_kind,
            });
        }
        if self.open_breakers.load(Ordering::Relaxed) >= self.config.workers {
            return Err(SubmitError::AllWorkersUnhealthy {
                workers: self.config.workers,
            });
        }
        let now = Instant::now();
        let traced = self.ctx.trace_enabled();
        let slack_secs = request
            .deadline
            .saturating_duration_since(now)
            .as_secs_f64();
        let slack_units = self.calibration.units(slack_secs);
        if !admissible(slack_units, self.core.min_resource()) {
            if traced {
                self.ctx.sink.record(EventKind::Instant {
                    name: "shed".to_string(),
                    detail: ShedReason::SlackBelowCheapest.name().to_string(),
                    at_ns: now_ns(),
                });
            }
            self.outcomes
                .lock()
                .push(Outcome::Shed(ShedReason::SlackBelowCheapest));
            return Ok(false);
        }
        let sub = Submitted {
            image: request.image,
            deadline: request.deadline,
            submitted_at: now,
            submitted_ns: self.ctx.sink.timestamp(),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
        };
        match self
            .ingress
            .as_ref()
            .expect("ingress open until shutdown")
            .try_send(sub)
        {
            Ok(()) => {
                if traced {
                    self.ctx.sink.record(EventKind::Instant {
                        name: "admission".to_string(),
                        detail: format!("slack_units={slack_units:.3}"),
                        at_ns: now_ns(),
                    });
                }
                Ok(true)
            }
            Err(TrySendError::Full(_) | TrySendError::Disconnected(_)) => {
                if traced {
                    self.ctx.sink.record(EventKind::Instant {
                        name: "shed".to_string(),
                        detail: ShedReason::QueueFull.name().to_string(),
                        at_ns: now_ns(),
                    });
                }
                self.outcomes
                    .lock()
                    .push(Outcome::Shed(ShedReason::QueueFull));
                Ok(false)
            }
        }
    }

    /// Stops accepting requests, drains everything already queued, joins
    /// all threads, and returns the aggregated metrics.
    pub fn shutdown(mut self) -> ServerMetrics {
        drop(self.ingress.take()); // scheduler's recv() ends, queue closes
        if let Some(s) = self.scheduler.take() {
            s.join().expect("scheduler thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        let outcomes = self.outcomes.lock();
        ServerMetrics::from_outcomes(&outcomes)
    }
}

/// The terminal failure reason for an engine error, classified through
/// [`EngineError::as_fault`].
fn failure_reason(err: &EngineError) -> FailureReason {
    match err.as_fault() {
        Some(FaultError::InjectedCrash { .. }) => FailureReason::Crash,
        Some(FaultError::InjectedReplayFailure { .. }) => FailureReason::PlanReplay,
        Some(FaultError::GuardTripped { .. }) => FailureReason::GuardTripped,
        _ => FailureReason::Engine,
    }
}

/// Serves one dequeued request to its terminal [`Outcome`]: the
/// per-attempt loop that arms fault injection, re-checks admissibility and
/// re-derives a (tighter) budget before each attempt, runs the engine
/// under the output guard, observes watchdog overruns, and maintains this
/// worker's circuit breaker. Pushes exactly one outcome.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    core: &Arc<EngineCore>,
    ctx: &RunContext,
    config: &ServerConfig,
    scratch: &mut ExecScratch,
    outcomes: &Mutex<Vec<Outcome>>,
    open_breakers: &AtomicUsize,
    consecutive_failures: &mut usize,
    breaker_open: &mut bool,
    spu: f64,
    deadline: Instant,
    sub: &Submitted,
    queue_wait: f64,
) {
    let traced = ctx.trace_enabled();
    let fault_event = |action: RecoveryAction, detail: String| {
        if traced {
            ctx.sink.record(EventKind::Fault {
                action,
                detail,
                at_ns: now_ns(),
            });
        }
    };
    let mut attempt: u32 = 0;
    let mut faults_seen: u32 = 0;
    let mut interpret_fallback = false;
    let mut last_reason = FailureReason::Engine;
    loop {
        let now = Instant::now();
        // Signed remaining slack: negative once past due. Re-derived per
        // attempt, so a retry sees only what the fault left it — the LUT
        // then degrades the retry to a cheaper configuration by itself.
        let slack_secs = if deadline >= now {
            deadline.duration_since(now).as_secs_f64()
        } else {
            -now.duration_since(deadline).as_secs_f64()
        };
        let slack_units = slack_secs / spu;
        if !admissible(slack_units, core.min_resource()) {
            if attempt == 0 {
                if traced {
                    ctx.sink.record(EventKind::Instant {
                        name: "shed".to_string(),
                        detail: ShedReason::SlackExhausted.name().to_string(),
                        at_ns: now_ns(),
                    });
                }
                outcomes
                    .lock()
                    .push(Outcome::Shed(ShedReason::SlackExhausted));
            } else {
                // Slack ran out while recovering: the fault, not the
                // queue, cost this request its deadline.
                fault_event(
                    RecoveryAction::FailFast,
                    format!("slack exhausted recovering from {last_reason}"),
                );
                outcomes.lock().push(Outcome::Failed(FailureRecord {
                    reason: last_reason,
                    retries: attempt,
                    faults_seen,
                }));
            }
            return;
        }
        let budget = budget_for(config.policy, core, slack_units);
        let (entry, _fits) = core.select(budget);
        let expected_secs = entry.resource * spu;

        let mut actx = ctx.clone();
        if (*breaker_open || interpret_fallback) && actx.exec.backend() == ExecBackend::Plan {
            let exec = actx.exec.clone().with_backend(ExecBackend::Interpret);
            actx = actx.with_exec(exec);
        }
        let mut fctx = FaultCtx::new().with_guard(GuardConfig::default());
        if let Some(plan) = config.fault {
            fctx = fctx.armed(plan, sub.seq, attempt);
        }
        let actx = actx.with_fault(fctx);

        let began = Instant::now();
        match core.run(scratch, &sub.image, entry, true, &actx) {
            Ok(inference) => {
                let finish = Instant::now();
                let elapsed = finish.duration_since(began).as_secs_f64();
                // The threaded server cannot abort a running inference, so
                // the watchdog is observational here: an attempt that
                // overran its allowance is recorded as a detection (the
                // simulator models the true abort).
                let allowance = slack_secs
                    .max(0.0)
                    .min(config.watchdog_grace * expected_secs);
                if elapsed > allowance {
                    fault_event(
                        RecoveryAction::Detected,
                        format!("watchdog: ran {elapsed:.6}s, allowance {allowance:.6}s"),
                    );
                }
                if *breaker_open {
                    *breaker_open = false;
                    open_breakers.fetch_sub(1, Ordering::Relaxed);
                    fault_event(RecoveryAction::CircuitClose, String::new());
                }
                *consecutive_failures = 0;
                if attempt > 0 {
                    fault_event(RecoveryAction::Degraded, format!("retries={attempt}"));
                }
                outcomes.lock().push(Outcome::Completed(RequestRecord {
                    latency: finish.duration_since(sub.submitted_at).as_secs_f64(),
                    queue_wait,
                    met_deadline: finish <= deadline,
                    accuracy: inference.norm_miou_estimate,
                    config: inference.config,
                    retries: attempt,
                    faults_seen,
                }));
                return;
            }
            Err(err) => {
                faults_seen += 1;
                *consecutive_failures += 1;
                let reason = failure_reason(&err);
                last_reason = reason;
                fault_event(RecoveryAction::Detected, format!("{reason}: {err}"));
                if *consecutive_failures >= config.breaker_threshold && !*breaker_open {
                    *breaker_open = true;
                    open_breakers.fetch_add(1, Ordering::Relaxed);
                    fault_event(
                        RecoveryAction::CircuitOpen,
                        format!("{} consecutive failures", *consecutive_failures),
                    );
                }
                if attempt >= config.recovery.max_retries() {
                    fault_event(RecoveryAction::FailFast, reason.name().to_string());
                    outcomes.lock().push(Outcome::Failed(FailureRecord {
                        reason,
                        retries: attempt,
                        faults_seen,
                    }));
                    return;
                }
                if reason == FailureReason::PlanReplay && !interpret_fallback {
                    interpret_fallback = true;
                    fault_event(
                        RecoveryAction::BackendFallback,
                        "plan -> interpret".to_string(),
                    );
                } else {
                    fault_event(RecoveryAction::Retry, reason.name().to_string());
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_averages_all_timed_runs() {
        // Fake clock: three scripted durations; the calibration must use
        // their mean, not any single (noisy) run.
        let mut durations = [0.010f64, 0.030, 0.020].into_iter();
        let cal = Calibration::from_timed_runs::<()>(
            &mut || Ok(durations.next().expect("exactly three runs requested")),
            3,
            4.0, // the full path costs 4 LUT units
        )
        .unwrap();
        assert!((cal.secs_per_unit - 0.020 / 4.0).abs() < 1e-12);
        assert!(durations.next().is_none(), "measure consumed every run");
    }

    #[test]
    fn calibration_propagates_timer_errors() {
        let mut calls = 0;
        let r = Calibration::from_timed_runs(
            &mut || {
                calls += 1;
                if calls == 2 {
                    Err("clock broke")
                } else {
                    Ok(0.01)
                }
            },
            3,
            1.0,
        );
        assert_eq!(r.unwrap_err(), "clock broke");
        assert_eq!(calls, 2, "stops at the first failure");
    }

    #[test]
    fn calibration_clamps_zero_durations() {
        let cal =
            Calibration::from_timed_runs::<()>(&mut || Ok(0.0), CALIBRATION_RUNS, 2.0).unwrap();
        assert!(cal.secs_per_unit > 0.0, "rate stays positive");
    }
}
