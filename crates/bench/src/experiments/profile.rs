//! `repro profile <model> <budget>`: one traced DRT inference, exported
//! as a chrome://tracing / Perfetto-loadable JSON plus a flame-style
//! summary table.
//!
//! The run is traced cold on purpose: the graph build, weight
//! materialization, and LUT selection phases are exactly what a latency
//! investigation wants to see next to the per-node execution spans. The
//! traced per-op FLOPs are cross-checked against the static count
//! `vit-profiler` computes for the executed graph — the trace is only
//! written after that agreement holds.

use crate::banner;
use std::sync::Arc;
use vit_drt::{DrtEngine, RunContext};
use vit_graph::{ExecBackend, ExecOptions};
use vit_models::SegFormerVariant;
use vit_profiler::Profile;
use vit_resilience::{ResourceKind, Workload};
use vit_tensor::Tensor;
use vit_trace::{chrome_trace_json, validate, EventKind, FlameSummary, RingBufferSink, TraceSink};

/// Arguments of `repro profile`.
#[derive(Debug, Clone)]
pub struct ProfileArgs {
    /// Model to profile (`segformer-b0` or `segformer-b2`).
    pub model: String,
    /// Budget as a fraction of the full path's resource, in `(0, 1]`.
    pub budget: f64,
    /// Where to write the chrome-trace JSON.
    pub out: String,
    /// Threads of the intra-inference execution pool (1 = sequential).
    pub threads: usize,
    /// Replay a compiled execution plan instead of interpreting the graph.
    pub plan: bool,
}

impl Default for ProfileArgs {
    fn default() -> Self {
        ProfileArgs {
            model: String::new(),
            budget: 1.0,
            out: "trace.json".to_string(),
            threads: 1,
            plan: false,
        }
    }
}

/// `repro profile`: trace one inference and export it. Exits non-zero on
/// an unknown model or an out-of-range budget.
pub fn profile(args: ProfileArgs) {
    let variant = match args.model.as_str() {
        "segformer-b0" => SegFormerVariant::b0(),
        "segformer-b2" => SegFormerVariant::b2(),
        other => {
            eprintln!("unknown profile model `{other}` (expected segformer-b0 or segformer-b2)");
            std::process::exit(2);
        }
    };
    if !(args.budget > 0.0 && args.budget <= 1.0) {
        eprintln!(
            "budget {} out of range: expected a fraction of the full path in (0, 1]",
            args.budget
        );
        std::process::exit(2);
    }
    banner(&format!(
        "profile — one traced {} inference of {} at budget {:.3}x full",
        if args.plan {
            "compiled-plan"
        } else {
            "interpreted"
        },
        args.model,
        args.budget
    ));

    let engine = DrtEngine::segformer(
        variant,
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    let core = engine.core().clone();
    let sink = Arc::new(RingBufferSink::new(1 << 20));
    let exec = if args.threads > 1 {
        ExecOptions::threaded(args.threads)
    } else {
        ExecOptions::sequential()
    };
    let backend = if args.plan {
        ExecBackend::Plan
    } else {
        ExecBackend::Interpret
    };
    let ctx = RunContext::default()
        .with_exec(exec.with_backend(backend))
        .with_sink(sink.clone() as Arc<dyn TraceSink>);

    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 7);
    let mut scratch = vit_graph::ExecScratch::new();
    let budget_units = args.budget * core.max_resource();
    let inference = core
        .infer(&mut scratch, &image, budget_units, &ctx)
        .expect("profiled inference runs");
    println!(
        "selected {:?} (met budget: {}, est. norm mIoU {:.3})",
        inference.config, inference.met_budget, inference.norm_miou_estimate
    );

    let events = sink.take();
    assert_eq!(sink.dropped(), 0, "trace ring was large enough");
    validate(&events).expect("captured trace is well-formed");

    // Cross-check: the traced per-node FLOPs must sum to exactly the
    // static count vit-profiler reports for the graph that executed.
    let graph = core.graph(inference.config).expect("executed graph builds");
    let static_flops = Profile::flops_only(&graph).total_flops();
    let traced_flops: u64 = events
        .iter()
        .map(|e| match &e.kind {
            EventKind::Node { flops, .. } => *flops,
            _ => 0,
        })
        .sum();
    assert_eq!(
        traced_flops, static_flops,
        "traced FLOPs diverge from the static profiler count"
    );
    println!(
        "traced FLOPs {traced_flops} == static profiler count {static_flops} \
         over {} events\n",
        events.len()
    );

    print!("{}", FlameSummary::from_events(&events, 10).render());

    std::fs::write(&args.out, chrome_trace_json(&events)).expect("write chrome trace JSON");
    println!(
        "\nwrote {} — load it at chrome://tracing or https://ui.perfetto.dev",
        args.out
    );
}
