/root/repo/target/debug/examples/detection_pipeline-6e7e8fa45d8624d8.d: crates/core/../../examples/detection_pipeline.rs

/root/repo/target/debug/examples/detection_pipeline-6e7e8fa45d8624d8: crates/core/../../examples/detection_pipeline.rs

crates/core/../../examples/detection_pipeline.rs:
