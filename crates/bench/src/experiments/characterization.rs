//! §II characterization experiments: Table I and Figures 1-5.

use crate::{banner, f, pct, Table};
use vit_graph::{Graph, LayerRole, OpClass};
use vit_models::{
    build_deformable_detr, build_detr, build_segformer, build_swin_upernet, build_vit, DetrConfig,
    SegFormerConfig, SegFormerVariant, SwinConfig, SwinVariant, VitConfig,
};
use vit_profiler::{GpuModel, Profile};

/// Table I: state-of-the-art vision transformer model summary.
pub fn table1() {
    banner("Table I — model summary (batch 1, TITAN V-class GPU model)");
    let gpu = GpuModel::titan_v();
    // (name, graph, paper GFLOPs, paper ms, paper params M)
    let rows: Vec<(&str, Graph, f64, f64, f64)> = vec![
        (
            "SegFormer B2 ADE",
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds"),
            62.6,
            58.0,
            27.6,
        ),
        (
            "SegFormer B2 Cityscapes",
            build_segformer(&SegFormerConfig::cityscapes(SegFormerVariant::b2())).expect("builds"),
            705.0,
            415.0,
            27.6,
        ),
        (
            "Swin Tiny ADE",
            build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).expect("builds"),
            237.0,
            215.0,
            60.0,
        ),
        (
            "DETR COCO",
            build_detr(&DetrConfig::detr_coco()).expect("builds"),
            86.0,
            162.0,
            41.0,
        ),
        (
            "Deformable DETR COCO",
            build_deformable_detr(&DetrConfig::deformable_coco()).expect("builds"),
            173.0,
            119.0,
            40.0,
        ),
    ];
    let mut t = Table::new(&[
        "model",
        "params M (paper)",
        "params M (ours)",
        "GFLOPs (paper)",
        "GFLOPs (ours)",
        "ms (paper)",
        "ms (ours)",
        "FPS (ours)",
    ]);
    for (name, g, p_gf, p_ms, p_m) in rows {
        let ms = gpu.total_time(&g) * 1e3;
        t.row(&[
            name.to_string(),
            f(p_m, 1),
            f(g.total_params() as f64 / 1e6, 1),
            f(p_gf, 1),
            f(g.total_flops() as f64 / 1e9, 1),
            f(p_ms, 0),
            f(ms, 1),
            f(1000.0 / ms, 1),
        ]);
    }
    t.print();
    println!();
    println!(
        "note: DETR-family absolute latencies are not matched (the paper's \
         measurements include mmdetection pipeline overheads the GPU model \
         does not represent); Figure 1 reproduces the backbone/transformer \
         split, which is the quantity the paper analyzes."
    );
}

/// Figure 1: DETR / Deformable DETR execution-time split across batch sizes.
pub fn fig1() {
    banner("Figure 1 — backbone vs transformer time split (COCO 640x820)");
    let gpu = GpuModel::titan_v();
    let mut t = Table::new(&[
        "model",
        "batch",
        "backbone ms",
        "transformer ms",
        "backbone share",
        "paper share",
    ]);
    // Paper: transformer is 6.1-12.4% (DETR) / 6.1-18.4% (D-DETR) of time,
    // and the backbone share *grows* with batch size.
    for (name, deformable, paper) in [
        ("DETR", false, "87.6-93.9%"),
        ("Deformable DETR", true, "81.6-93.9%"),
    ] {
        for batch in [1usize, 2, 4, 8, 16] {
            let cfg = if deformable {
                DetrConfig::deformable_coco()
            } else {
                DetrConfig::detr_coco()
            }
            .with_image(640, 832)
            .with_batch(batch);
            let g = if deformable {
                build_deformable_detr(&cfg).expect("builds")
            } else {
                build_detr(&cfg).expect("builds")
            };
            let mut backbone = 0.0;
            let mut rest = 0.0;
            for (_, n) in g.iter() {
                let time = gpu.node_time(&g, n);
                if matches!(n.role, LayerRole::Backbone) {
                    backbone += time;
                } else {
                    rest += time;
                }
            }
            t.row(&[
                name.to_string(),
                batch.to_string(),
                f(backbone * 1e3, 1),
                f(rest * 1e3, 1),
                pct(backbone / (backbone + rest)),
                paper.to_string(),
            ]);
        }
    }
    t.print();
}

/// Figure 2: the layer structure of SegFormer and Swin (printed inventory).
pub fn fig2() {
    banner("Figure 2 — SegFormer-B2 / Swin-T layer structure (inventory)");
    for (name, g) in [
        (
            "SegFormer-B2 (512x512)",
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds"),
        ),
        (
            "Swin-T + UPerNet (512x512)",
            build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).expect("builds"),
        ),
    ] {
        println!(
            "{name}: {} nodes, {:.1} GFLOPs, {:.1} M params",
            g.len(),
            g.total_flops() as f64 / 1e9,
            g.total_params() as f64 / 1e6
        );
        let mut t = Table::new(&["stage / component", "GFLOPs", "share"]);
        let total = g.total_flops() as f64;
        let prefixes = [
            "encoder.patch_embed",
            "encoder.stage0",
            "encoder.stage1",
            "encoder.stage2",
            "encoder.stage3",
            "encoder.merge",
            "decoder.",
        ];
        for p in prefixes {
            let fl: u64 = g
                .iter()
                .filter(|(_, n)| n.name.starts_with(p))
                .map(|(_, n)| n.flops(&g))
                .sum();
            if fl > 0 {
                t.row(&[p.to_string(), f(fl as f64 / 1e9, 2), pct(fl as f64 / total)]);
            }
        }
        t.print();
        println!();
    }
    // The §II contrast: convolution-free early transformers.
    let vit = build_vit(&VitConfig::base16()).expect("builds");
    println!(
        "contrast (paper §II): ViT-B/16 convolution FLOPs share = {} (zero, as published)",
        pct(vit.flops_by_class(OpClass::Conv) as f64 / vit.total_flops() as f64)
    );
}

fn class_breakdown(name: &str, g: &Graph, named: &[(&str, &str, f64)]) {
    let gpu = GpuModel::titan_v();
    let profile = Profile::with_gpu(g, &gpu);
    let total_f = profile.total_flops() as f64;
    let total_t = profile.total_time();
    println!("{name}");
    let mut t = Table::new(&["layer class", "FLOPs share", "time share"]);
    for (class, s) in profile.by_class() {
        t.row(&[
            class.to_string(),
            pct(s.flops as f64 / total_f),
            pct(s.time_s / total_t),
        ]);
    }
    t.print();
    println!();
    let mut t2 = Table::new(&["named layer", "FLOPs share (ours)", "FLOPs share (paper)"]);
    for (label, node, paper) in named {
        t2.row(&[
            label.to_string(),
            pct(profile.flops_share(node)),
            pct(*paper),
        ]);
    }
    t2.print();
}

/// Figure 3: SegFormer-B2 FLOPs and time distribution.
pub fn fig3() {
    banner("Figure 3 — SegFormer-B2 FLOPs / time distribution (ADE 512x512)");
    let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).expect("builds");
    class_breakdown(
        "SegFormer-B2",
        &g,
        &[
            ("Conv2DFuse", "decoder.conv_fuse", 0.62),
            ("Conv2DPred", "decoder.conv_pred", 0.03),
            ("DecodeLinear0", "decoder.linear0", 0.013),
        ],
    );
    let conv = g.flops_by_class(OpClass::Conv) as f64 / g.total_flops() as f64;
    println!();
    println!("convolution FLOPs share: {} (paper: 68%)", pct(conv));
    println!(
        "decoder FLOPs share:     {} (paper: ~68%)",
        pct(g.decoder_flops() as f64 / g.total_flops() as f64)
    );
}

/// Figure 4: Swin-Tiny FLOPs and time distribution.
pub fn fig4() {
    banner("Figure 4 — Swin-Tiny FLOPs / time distribution (ADE 512x512)");
    let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).expect("builds");
    class_breakdown(
        "Swin-Tiny + UPerNet",
        &g,
        &[
            ("fpn_bottleneck_Conv2D", "decoder.fpn_bottleneck", 0.65),
            ("fpn_convs_0_Conv2D", "decoder.fpn_convs0.conv", 0.16),
            ("fpn_convs_1_Conv2D", "decoder.fpn_convs1.conv", 0.04),
        ],
    );
    let conv = g.flops_by_class(OpClass::Conv) as f64 / g.total_flops() as f64;
    println!();
    println!("convolution FLOPs share: {} (paper: 89%)", pct(conv));
    println!(
        "decoder FLOPs share:     {} (paper: 89%)",
        pct(g.decoder_flops() as f64 / g.total_flops() as f64)
    );
}

/// Figure 5: image size vs the fuse convolution's share of FLOPs / latency.
pub fn fig5() {
    banner("Figure 5 — image size vs fuse-convolution share (Swin-T)");
    let gpu = GpuModel::titan_v();
    let mut t = Table::new(&["image", "FLOPs share", "latency share (b=1)"]);
    for (h, w) in [
        (128, 128),
        (256, 256),
        (512, 512),
        (768, 768),
        (1024, 1024),
        (1024, 2048),
    ] {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny()).with_image(h, w))
            .expect("builds");
        let profile = Profile::with_gpu(&g, &gpu);
        let fuse = profile.by_prefix("decoder.fpn_bottleneck");
        t.row(&[
            format!("{h}x{w}"),
            pct(fuse.flops as f64 / profile.total_flops() as f64),
            pct(fuse.time_s / profile.total_time()),
        ]);
    }
    t.print();
    println!();
    println!(
        "paper: this single convolution is the majority of FLOPs at the ADE and Cityscapes sizes."
    );
}
