//! The paper's published dynamic-configuration points (Tables II and III)
//! and the configuration spaces swept around them.

use serde::{Deserialize, Serialize};
use vit_models::{SegFormerDynamic, SegFormerVariant, SwinDynamic, SwinVariant};

/// Which dataset/model pairing a point belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Workload {
    /// SegFormer-B2 trained on ADE20K (512x512).
    SegFormerAde,
    /// SegFormer-B2 trained on Cityscapes (1024x2048).
    SegFormerCityscapes,
    /// Swin-Tiny + UPerNet on ADE20K.
    SwinTinyAde,
    /// Swin-Base + UPerNet on ADE20K.
    SwinBaseAde,
}

/// A published anchor: a dynamic configuration together with the paper's
/// measured normalized mIoU (and, where published, normalized resource
/// utilization).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperPoint {
    /// The paper's label (`A`..`L` for Table II; synthesized labels
    /// elsewhere).
    pub label: &'static str,
    /// Encoder depths of the configuration.
    pub depths: [usize; 4],
    /// Fuse-convolution input channels (`Conv2DFuse` /
    /// `fpn_bottleneck_Conv2D`).
    pub fuse_in_channels: usize,
    /// Normalized resource utilization the paper reports (1.0 = full model).
    pub norm_resource: f64,
    /// Normalized mIoU the paper reports (1.0 = full model).
    pub norm_miou: f64,
}

/// Table II, rows A-G: SegFormer-B2 trained on ADE20K.
/// Row A is the full model.
pub fn table2_ade() -> Vec<PaperPoint> {
    vec![
        PaperPoint {
            label: "A",
            depths: [3, 4, 6, 3],
            fuse_in_channels: 3072,
            norm_resource: 1.00,
            norm_miou: 1.00,
        },
        PaperPoint {
            label: "B",
            depths: [3, 4, 6, 3],
            fuse_in_channels: 1920,
            norm_resource: 0.88,
            norm_miou: 0.98,
        },
        PaperPoint {
            label: "C",
            depths: [2, 4, 6, 3],
            fuse_in_channels: 1664,
            norm_resource: 0.83,
            norm_miou: 0.96,
        },
        PaperPoint {
            label: "D",
            depths: [2, 3, 6, 3],
            fuse_in_channels: 1408,
            norm_resource: 0.78,
            norm_miou: 0.92,
        },
        PaperPoint {
            label: "E",
            depths: [2, 3, 5, 3],
            fuse_in_channels: 1024,
            norm_resource: 0.73,
            norm_miou: 0.82,
        },
        PaperPoint {
            label: "F",
            depths: [3, 2, 5, 2],
            fuse_in_channels: 896,
            norm_resource: 0.69,
            norm_miou: 0.72,
        },
        PaperPoint {
            label: "G",
            depths: [2, 3, 4, 3],
            fuse_in_channels: 512,
            norm_resource: 0.66,
            norm_miou: 0.63,
        },
    ]
}

/// Table II, rows H-L: SegFormer-B2 trained on Cityscapes (row A is shared).
pub fn table2_cityscapes() -> Vec<PaperPoint> {
    vec![
        PaperPoint {
            label: "A",
            depths: [3, 4, 6, 3],
            fuse_in_channels: 3072,
            norm_resource: 1.00,
            norm_miou: 1.00,
        },
        PaperPoint {
            label: "H",
            depths: [2, 4, 6, 3],
            fuse_in_channels: 2432,
            norm_resource: 0.76,
            norm_miou: 0.98,
        },
        PaperPoint {
            label: "I",
            depths: [2, 4, 5, 3],
            fuse_in_channels: 2048,
            norm_resource: 0.72,
            norm_miou: 0.95,
        },
        PaperPoint {
            label: "J",
            depths: [2, 4, 5, 3],
            fuse_in_channels: 1280,
            norm_resource: 0.68,
            norm_miou: 0.90,
        },
        PaperPoint {
            label: "K",
            depths: [2, 4, 5, 3],
            fuse_in_channels: 896,
            norm_resource: 0.66,
            norm_miou: 0.81,
        },
        PaperPoint {
            label: "L",
            depths: [2, 4, 5, 3],
            fuse_in_channels: 384,
            norm_resource: 0.63,
            norm_miou: 0.69,
        },
    ]
}

/// Table III: Swin-Base execution-path configurations on ADE20K.
pub fn table3_swin_base() -> Vec<PaperPoint> {
    vec![
        PaperPoint {
            label: "SB0",
            depths: [2, 2, 18, 2],
            fuse_in_channels: 2048,
            norm_resource: 1.000,
            norm_miou: 1.00,
        },
        PaperPoint {
            label: "SB1",
            depths: [2, 2, 18, 2],
            fuse_in_channels: 1920,
            norm_resource: 0.998,
            norm_miou: 0.98,
        },
        PaperPoint {
            label: "SB2",
            depths: [2, 2, 18, 2],
            fuse_in_channels: 1792,
            norm_resource: 0.990,
            norm_miou: 0.94,
        },
        PaperPoint {
            label: "SB3",
            depths: [2, 2, 16, 2],
            fuse_in_channels: 1920,
            norm_resource: 0.980,
            norm_miou: 0.85,
        },
        PaperPoint {
            label: "SB4",
            depths: [2, 2, 14, 2],
            fuse_in_channels: 1792,
            norm_resource: 0.900,
            norm_miou: 0.81,
        },
        PaperPoint {
            label: "SB5",
            depths: [2, 2, 16, 2],
            fuse_in_channels: 1152,
            norm_resource: 0.810,
            norm_miou: 0.78,
        },
        PaperPoint {
            label: "SB6",
            depths: [2, 2, 13, 2],
            fuse_in_channels: 1536,
            norm_resource: 0.740,
            norm_miou: 0.76,
        },
        PaperPoint {
            label: "SB7",
            depths: [2, 2, 12, 2],
            fuse_in_channels: 1536,
            norm_resource: 0.620,
            norm_miou: 0.74,
        },
        PaperPoint {
            label: "SB8",
            depths: [2, 2, 11, 2],
            fuse_in_channels: 1536,
            norm_resource: 0.520,
            norm_miou: 0.72,
        },
    ]
}

/// Swin-Tiny channel-cut anchors (Figure 7 labels the preserved
/// `fpn_bottleneck_Conv2D` channels on the plot; the mIoU values here
/// follow the curve's published shape — steeper than SegFormer, per §III-B).
pub fn fig7_swin_tiny() -> Vec<PaperPoint> {
    vec![
        PaperPoint {
            label: "ST-2048",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 2048,
            norm_resource: 1.00,
            norm_miou: 1.00,
        },
        PaperPoint {
            label: "ST-1792",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 1792,
            norm_resource: 0.95,
            norm_miou: 0.96,
        },
        PaperPoint {
            label: "ST-1536",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 1536,
            norm_resource: 0.91,
            norm_miou: 0.91,
        },
        PaperPoint {
            label: "ST-1280",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 1280,
            norm_resource: 0.87,
            norm_miou: 0.85,
        },
        PaperPoint {
            label: "ST-1024",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 1024,
            norm_resource: 0.84,
            norm_miou: 0.77,
        },
        PaperPoint {
            label: "ST-512",
            depths: [2, 2, 6, 2],
            fuse_in_channels: 512,
            norm_resource: 0.79,
            norm_miou: 0.58,
        },
    ]
}

/// A published *retrained* model point (the "large squares" of Figures 6
/// and 7): a different trained network, with its absolute accuracy and
/// resource utilization normalized to the case-study model's full execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainedModelPoint {
    /// Model name.
    pub name: &'static str,
    /// Absolute accuracy (mIoU) of the trained model on the dataset.
    pub miou: f64,
    /// Accuracy normalized to the case-study model's full accuracy.
    pub norm_miou: f64,
    /// GFLOPs at the dataset's image size (for resource normalization).
    pub gflops: f64,
}

/// Published SegFormer models on ADE20K (normalizer: B2's 0.4651 mIoU).
pub fn trained_segformer_ade() -> Vec<TrainedModelPoint> {
    let b2 = 0.4651;
    vec![
        TrainedModelPoint {
            name: "segformer-b2",
            miou: 0.4651,
            norm_miou: 1.0,
            gflops: 62.4,
        },
        TrainedModelPoint {
            name: "segformer-b1",
            miou: 0.4220,
            norm_miou: 0.4220 / b2,
            gflops: 15.9,
        },
        TrainedModelPoint {
            name: "segformer-b0",
            miou: 0.3740,
            norm_miou: 0.3740 / b2,
            gflops: 8.4,
        },
    ]
}

/// Published SegFormer models on Cityscapes (normalizer: B2's 0.8098 mIoU).
pub fn trained_segformer_cityscapes() -> Vec<TrainedModelPoint> {
    let b2 = 0.8098;
    vec![
        TrainedModelPoint {
            name: "segformer-b2",
            miou: 0.8098,
            norm_miou: 1.0,
            gflops: 717.1,
        },
        TrainedModelPoint {
            name: "segformer-b1",
            miou: 0.7856,
            norm_miou: 0.7856 / b2,
            gflops: 243.7,
        },
        TrainedModelPoint {
            name: "segformer-b0",
            miou: 0.7637,
            norm_miou: 0.7637 / b2,
            gflops: 125.5,
        },
    ]
}

/// Published Swin + UPerNet models on ADE20K (normalizer: the case-study
/// model; Table I gives Swin-Tiny 0.4451).
pub fn trained_swin_ade() -> Vec<TrainedModelPoint> {
    vec![
        TrainedModelPoint {
            name: "swin-base",
            miou: 0.4813,
            norm_miou: 1.0,
            gflops: 299.0,
        },
        TrainedModelPoint {
            name: "swin-small",
            miou: 0.4772,
            norm_miou: 0.4772 / 0.4813,
            gflops: 259.0,
        },
        TrainedModelPoint {
            name: "swin-tiny",
            miou: 0.4451,
            norm_miou: 0.4451 / 0.4813,
            gflops: 237.0,
        },
    ]
}

impl PaperPoint {
    /// Converts a SegFormer-family point into the builder's dynamic config.
    pub fn to_segformer_dynamic(&self, variant: &SegFormerVariant) -> SegFormerDynamic {
        SegFormerDynamic::with_depths_and_fuse(variant, self.depths, self.fuse_in_channels)
    }

    /// Converts a Swin-family point into the builder's dynamic config.
    pub fn to_swin_dynamic(&self, _variant: &SwinVariant) -> SwinDynamic {
        SwinDynamic {
            depths: self.depths,
            bottleneck_in_channels: self.fuse_in_channels,
        }
    }
}

/// Enumerates a sweep grid of SegFormer dynamic configurations around the
/// published points: all depth reductions of at most `max_skip` blocks per
/// stage crossed with fuse-channel fractions.
pub fn segformer_sweep_space(
    variant: &SegFormerVariant,
    max_skip: usize,
    channel_steps: usize,
) -> Vec<SegFormerDynamic> {
    let mut out = Vec::new();
    let full = variant.depths;
    let depth_options: Vec<Vec<usize>> = full
        .iter()
        .map(|&d| (d.saturating_sub(max_skip).max(1)..=d).collect())
        .collect();
    let full_fuse = variant.full_fuse_in();
    for &d0 in &depth_options[0] {
        for &d1 in &depth_options[1] {
            for &d2 in &depth_options[2] {
                for &d3 in &depth_options[3] {
                    for step in 0..channel_steps {
                        let frac = 1.0 - step as f64 / channel_steps as f64 * 0.875;
                        let ch = ((full_fuse as f64 * frac / 4.0).round() as usize * 4).max(4);
                        out.push(SegFormerDynamic::with_depths_and_fuse(
                            variant,
                            [d0, d1, d2, d3],
                            ch.min(full_fuse),
                        ));
                    }
                }
            }
        }
    }
    out.sort_by_key(|d| (d.depths, d.fuse_in_channels));
    out.dedup();
    out
}

/// Enumerates a sweep grid of Swin dynamic configurations: stage-2 depth
/// reductions (the deep stage the paper bypasses in Swin-Base) crossed with
/// bottleneck channel fractions.
pub fn swin_sweep_space(
    variant: &SwinVariant,
    max_skip: usize,
    channel_steps: usize,
) -> Vec<SwinDynamic> {
    let mut out = Vec::new();
    let full = variant.depths;
    let d2_options: Vec<usize> = (full[2].saturating_sub(max_skip).max(1)..=full[2]).collect();
    let full_ch = variant.full_bottleneck_in();
    for &d2 in &d2_options {
        for step in 0..channel_steps.max(1) {
            let frac = 1.0 - step as f64 / channel_steps.max(1) as f64 * 0.875;
            let ch = ((full_ch as f64 * frac / 4.0).round() as usize * 4).clamp(4, full_ch);
            out.push(SwinDynamic {
                depths: [full[0], full[1], d2, full[3]],
                bottleneck_in_channels: ch,
            });
        }
    }
    out.sort_by_key(|d| (d.depths, d.bottleneck_in_channels));
    out.dedup();
    out
}

/// Enumerates the *extended* sweep space: depth reductions crossed with
/// fuse-input, fuse-output (`Conv2DPred` input), and `DecodeLinear0` input
/// channel cuts — all four knobs of §III-A. Coarser channel grids keep the
/// product tractable.
pub fn segformer_extended_sweep_space(
    variant: &SegFormerVariant,
    max_skip: usize,
) -> Vec<SegFormerDynamic> {
    let mut out = Vec::new();
    let full = variant.depths;
    let depth_options: Vec<Vec<usize>> = full
        .iter()
        .map(|&d| (d.saturating_sub(max_skip).max(1)..=d).collect())
        .collect();
    let fuse_in_options: Vec<usize> = [1.0, 0.75, 0.5, 0.25]
        .iter()
        .map(|f| ((variant.full_fuse_in() as f64 * f / 4.0) as usize * 4).max(4))
        .collect();
    let fuse_out_options: Vec<usize> = [1.0, 736.0 / 768.0, 0.75, 0.5]
        .iter()
        .map(|f| ((variant.decoder_dim as f64 * f) as usize).max(1))
        .collect();
    let dl0_options: Vec<usize> = [1.0, 0.5]
        .iter()
        .map(|f| ((variant.embed_dims[0] as f64 * f) as usize).max(1))
        .collect();
    for &d0 in &depth_options[0] {
        for &d1 in &depth_options[1] {
            for &d2 in &depth_options[2] {
                for &d3 in &depth_options[3] {
                    for &fi in &fuse_in_options {
                        for &fo in &fuse_out_options {
                            for &dl0 in &dl0_options {
                                out.push(SegFormerDynamic {
                                    depths: [d0, d1, d2, d3],
                                    fuse_in_channels: fi,
                                    fuse_out_channels: fo,
                                    decode_linear0_in: dl0,
                                });
                            }
                        }
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_rows_match_paper_counts() {
        assert_eq!(table2_ade().len(), 7);
        assert_eq!(table2_cityscapes().len(), 6);
        assert_eq!(table3_swin_base().len(), 9);
    }

    #[test]
    fn table2_points_are_valid_b2_configs() {
        let v = SegFormerVariant::b2();
        for p in table2_ade().iter().chain(table2_cityscapes().iter()) {
            let dynamic = p.to_segformer_dynamic(&v);
            let cfg = vit_models::SegFormerConfig::ade20k(v).with_dynamic(dynamic);
            assert!(
                vit_models::build_segformer(&cfg).is_ok(),
                "point {} is not buildable",
                p.label
            );
        }
    }

    #[test]
    fn table3_points_are_valid_swin_base_configs() {
        let v = SwinVariant::base();
        for p in table3_swin_base() {
            let cfg = vit_models::SwinConfig::ade20k(v).with_dynamic(p.to_swin_dynamic(&v));
            assert!(
                vit_models::build_swin_upernet(&cfg).is_ok(),
                "point {} is not buildable",
                p.label
            );
        }
    }

    #[test]
    fn anchors_monotone_in_resource_and_accuracy() {
        for points in [table2_ade(), table2_cityscapes()] {
            for w in points.windows(2) {
                assert!(w[1].norm_resource < w[0].norm_resource);
                assert!(w[1].norm_miou < w[0].norm_miou);
            }
        }
    }

    #[test]
    fn sweep_space_contains_paper_points_and_full() {
        let v = SegFormerVariant::b2();
        let space = segformer_sweep_space(&v, 2, 8);
        assert!(space.len() > 100);
        assert!(space.contains(&SegFormerDynamic::full(&v)));
        // Every config is buildable.
        for d in space.iter().take(20) {
            let cfg = vit_models::SegFormerConfig::ade20k(v).with_dynamic(*d);
            assert!(vit_models::build_segformer(&cfg).is_ok());
        }
    }

    #[test]
    fn swin_sweep_space_is_valid_and_contains_full() {
        let v = SwinVariant::base();
        let space = swin_sweep_space(&v, 7, 6);
        assert!(space.contains(&SwinDynamic::full(&v)));
        assert!(space.len() >= 40);
        for d in space.iter().step_by(7) {
            let cfg = vit_models::SwinConfig::ade20k(v).with_dynamic(*d);
            assert!(vit_models::build_swin_upernet(&cfg).is_ok(), "{d:?}");
        }
        // Table III's deepest skip is reachable.
        assert!(space.iter().any(|d| d.depths == [2, 2, 11, 2]));
    }

    #[test]
    fn extended_space_covers_all_four_knobs() {
        let v = SegFormerVariant::b2();
        let space = segformer_extended_sweep_space(&v, 1);
        assert!(space.len() > 500);
        assert!(space.iter().any(|d| d.fuse_out_channels == 736));
        assert!(space.iter().any(|d| d.decode_linear0_in < v.embed_dims[0]));
        assert!(space.contains(&SegFormerDynamic::full(&v)));
        for d in space.iter().step_by(97) {
            let cfg = vit_models::SegFormerConfig::ade20k(v).with_dynamic(*d);
            assert!(vit_models::build_segformer(&cfg).is_ok(), "{d:?}");
        }
    }

    #[test]
    fn trained_model_points_are_normalized() {
        for p in trained_segformer_ade() {
            assert!(p.norm_miou <= 1.0 && p.norm_miou > 0.5);
        }
        let swin = trained_swin_ade();
        assert!((swin[0].norm_miou - 1.0).abs() < 1e-12);
    }
}
