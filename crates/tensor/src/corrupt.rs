//! Deterministic activation corruption for fault-injection experiments.
//!
//! Models a transient single-event upset: one exponent bit of one `f32`
//! element flips mid-run. The hook is deliberately biased toward
//! *detectable* upsets — it scans for an element whose flipped value lands
//! beyond a caller-supplied magnitude threshold (or goes non-finite), so a
//! downstream NaN/Inf + magnitude guard is guaranteed to be able to catch
//! the corruption. Silent sub-threshold data corruption is out of scope of
//! this fault model.

/// The exponent bit [`flip_detectable`] upsets. Bit 30 is the most
/// significant exponent bit of an IEEE-754 `f32`: flipping it multiplies a
/// normal value's magnitude by `2^128` (overflowing to huge or infinity
/// for any |v| > ~5.9e-39), which no plausible activation survives.
pub const FLIP_BIT: u32 = 30;

/// Record of one applied bit-flip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BitFlip {
    /// Flat element index that was corrupted.
    pub index: usize,
    /// Bit position that was flipped (always [`FLIP_BIT`]).
    pub bit: u32,
    /// Value before the flip.
    pub before: f32,
    /// Value after the flip.
    pub after: f32,
}

/// Flips [`FLIP_BIT`] of the first element at or after `start`
/// (wrapping) whose flipped value a guard with magnitude limit
/// `threshold` would catch (non-finite or `|v| > threshold`).
///
/// Returns `None` — leaving `data` untouched — when `data` is empty or no
/// element yields a detectable flip (e.g. an all-subnormal tensor); the
/// injected upset then simply "misses".
pub fn flip_detectable(data: &mut [f32], start: usize, threshold: f32) -> Option<BitFlip> {
    if data.is_empty() {
        return None;
    }
    let start = start % data.len();
    for offset in 0..data.len() {
        let index = (start + offset) % data.len();
        let before = data[index];
        if before.is_nan() {
            continue;
        }
        let after = f32::from_bits(before.to_bits() ^ (1u32 << FLIP_BIT));
        if !after.is_finite() || after.abs() > threshold {
            data[index] = after;
            return Some(BitFlip {
                index,
                bit: FLIP_BIT,
                before,
                after,
            });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plausible_activations_always_flip_detectably() {
        let mut data: Vec<f32> = (0..256).map(|i| (i as f32 - 128.0) / 100.0).collect();
        let flip = flip_detectable(&mut data, 37, 1e6).expect("flip lands");
        assert_eq!(flip.bit, FLIP_BIT);
        assert!(!flip.after.is_finite() || flip.after.abs() > 1e6);
        assert_eq!(data[flip.index], flip.after);
    }

    #[test]
    fn scan_wraps_and_skips_undetectable_elements() {
        // |v| >= 2 shrinks under a bit-30 flip; only index 1 is flippable
        // past the threshold, and the scan must wrap around to find it.
        let mut data = vec![4.0f32, 0.5, 8.0, 16.0];
        let flip = flip_detectable(&mut data, 2, 1e6).expect("wraps to index 1");
        assert_eq!(flip.index, 1);
        assert_eq!(flip.before, 0.5);
        assert_eq!(data, vec![4.0, flip.after, 8.0, 16.0]);
    }

    #[test]
    fn hopeless_tensors_miss() {
        let mut empty: Vec<f32> = vec![];
        assert_eq!(flip_detectable(&mut empty, 0, 1e6), None);
        // NaNs are skipped; large values shrink under the flip.
        let mut data = vec![f32::NAN, 1.0e20f32];
        assert_eq!(flip_detectable(&mut data, 0, f32::MAX), None);
        assert!(data[0].is_nan());
        assert_eq!(data[1], 1.0e20);
    }

    #[test]
    fn flip_is_deterministic_in_start() {
        let base: Vec<f32> = (0..64).map(|i| (i as f32).sin()).collect();
        let mut a = base.clone();
        let mut b = base.clone();
        let fa = flip_detectable(&mut a, 9, 1e6);
        let fb = flip_detectable(&mut b, 9, 1e6);
        assert_eq!(fa, fb);
        assert_eq!(a, b);
    }
}
