//! FLOPs/byte accounting and per-layer breakdowns — the reproduction's
//! stand-in for torchprof / the PyTorch autograd profiler.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vit_graph::{Graph, LayerRole, Node, Op, OpClass};

/// Bytes moved to/from DRAM by a node (4-byte elements, reading every input
/// and writing the output once — a first-order model of a fused kernel).
pub fn node_io_bytes(graph: &Graph, node: &Node) -> u64 {
    if matches!(node.op, Op::Input { .. } | Op::Identity) {
        return 0;
    }
    let in_bytes: u64 = node
        .inputs
        .iter()
        .map(|id| graph.node(*id).shape.iter().product::<usize>() as u64 * 4)
        .sum();
    let out_bytes = node.shape.iter().product::<usize>() as u64 * 4;
    let param_bytes = node.params(graph) * 4;
    in_bytes + out_bytes + param_bytes
}

/// One row of a profile: the cost of a single layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerCost {
    /// Node name.
    pub name: String,
    /// Operator class.
    pub class: OpClass,
    /// Functional role.
    pub role: LayerRole,
    /// FLOPs (MAC convention).
    pub flops: u64,
    /// Learned parameters.
    pub params: u64,
    /// DRAM traffic in bytes.
    pub bytes: u64,
    /// Modeled GPU time in seconds (0 when profiled without a GPU model).
    pub time_s: f64,
    /// Modeled GPU energy in joules (0 without a GPU model).
    pub energy_j: f64,
}

/// A full per-layer profile of a graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Profile {
    /// Model name.
    pub model: String,
    /// One row per node, in topological order.
    pub layers: Vec<LayerCost>,
}

impl Profile {
    /// Profiles FLOPs/params/bytes only.
    pub fn flops_only(graph: &Graph) -> Self {
        Self::build(graph, None)
    }

    /// Profiles FLOPs plus modeled GPU time and energy.
    pub fn with_gpu(graph: &Graph, gpu: &crate::GpuModel) -> Self {
        Self::build(graph, Some(gpu))
    }

    fn build(graph: &Graph, gpu: Option<&crate::GpuModel>) -> Self {
        let layers = graph
            .iter()
            .map(|(_, n)| LayerCost {
                name: n.name.clone(),
                class: n.op.class(),
                role: n.role,
                flops: n.flops(graph),
                params: n.params(graph),
                bytes: node_io_bytes(graph, n),
                time_s: gpu.map_or(0.0, |g| g.node_time(graph, n)),
                energy_j: gpu.map_or(0.0, |g| g.node_energy(graph, n)),
            })
            .collect();
        Profile {
            model: graph.model.clone(),
            layers,
        }
    }

    /// Total FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.layers.iter().map(|l| l.flops).sum()
    }

    /// Total modeled time in seconds.
    pub fn total_time(&self) -> f64 {
        self.layers.iter().map(|l| l.time_s).sum()
    }

    /// Total modeled energy in joules.
    pub fn total_energy(&self) -> f64 {
        self.layers.iter().map(|l| l.energy_j).sum()
    }

    /// Sums `(flops, time, energy)` per operator class, ordered by class.
    pub fn by_class(&self) -> BTreeMap<OpClass, CostSummary> {
        let mut map: BTreeMap<OpClass, CostSummary> = BTreeMap::new();
        for l in &self.layers {
            let e = map.entry(l.class).or_default();
            e.flops += l.flops;
            e.time_s += l.time_s;
            e.energy_j += l.energy_j;
        }
        map
    }

    /// Sums costs for layers whose name starts with `prefix`.
    pub fn by_prefix(&self, prefix: &str) -> CostSummary {
        let mut s = CostSummary::default();
        for l in self.layers.iter().filter(|l| l.name.starts_with(prefix)) {
            s.flops += l.flops;
            s.time_s += l.time_s;
            s.energy_j += l.energy_j;
        }
        s
    }

    /// The `n` individually most expensive layers by FLOPs, descending.
    pub fn top_flops(&self, n: usize) -> Vec<&LayerCost> {
        let mut v: Vec<&LayerCost> = self.layers.iter().filter(|l| l.flops > 0).collect();
        v.sort_by_key(|l| std::cmp::Reverse(l.flops));
        v.truncate(n);
        v
    }

    /// Share of total FLOPs held by the layer with the given name.
    pub fn flops_share(&self, name: &str) -> f64 {
        let total = self.total_flops() as f64;
        if total == 0.0 {
            return 0.0;
        }
        self.layers
            .iter()
            .filter(|l| l.name == name)
            .map(|l| l.flops as f64)
            .sum::<f64>()
            / total
    }
}

/// Aggregated cost of a set of layers.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CostSummary {
    /// Total FLOPs.
    pub flops: u64,
    /// Total modeled time in seconds.
    pub time_s: f64,
    /// Total modeled energy in joules.
    pub energy_j: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GpuModel;
    use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};

    fn b0_profile() -> Profile {
        let g =
            build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(128, 128))
                .unwrap();
        Profile::with_gpu(&g, &GpuModel::titan_v())
    }

    #[test]
    fn totals_match_graph() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0())).unwrap();
        let p = Profile::flops_only(&g);
        assert_eq!(p.total_flops(), g.total_flops());
        assert_eq!(p.layers.len(), g.len());
    }

    #[test]
    fn class_sums_partition_total() {
        let p = b0_profile();
        let by_class: u64 = p.by_class().values().map(|s| s.flops).sum();
        assert_eq!(by_class, p.total_flops());
        let time: f64 = p.by_class().values().map(|s| s.time_s).sum();
        assert!((time - p.total_time()).abs() < 1e-9);
    }

    #[test]
    fn top_flops_sorted_descending() {
        let p = b0_profile();
        let top = p.top_flops(5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].flops >= w[1].flops);
        }
        // In every SegFormer the fusion conv is the single largest layer.
        assert_eq!(top[0].name, "decoder.conv_fuse");
    }

    #[test]
    fn prefix_aggregation() {
        let p = b0_profile();
        let enc = p.by_prefix("encoder.");
        let dec = p.by_prefix("decoder.");
        assert!(enc.flops > 0 && dec.flops > 0);
        assert!(enc.flops + dec.flops <= p.total_flops());
        assert!(dec.flops > enc.flops, "decoder dominates SegFormer");
    }

    #[test]
    fn flops_share_of_missing_layer_is_zero() {
        let p = b0_profile();
        assert_eq!(p.flops_share("no.such.layer"), 0.0);
        assert!(p.flops_share("decoder.conv_fuse") > 0.3);
    }

    #[test]
    fn bytes_positive_for_compute_layers() {
        let p = b0_profile();
        for l in &p.layers {
            if l.flops > 0 {
                assert!(l.bytes > 0, "{} has zero bytes", l.name);
            }
        }
    }
}
