/root/repo/target/release/deps/parking_lot-bbfbac552f03dee5.d: vendor/parking_lot/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libparking_lot-bbfbac552f03dee5.rmeta: vendor/parking_lot/src/lib.rs Cargo.toml

vendor/parking_lot/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
