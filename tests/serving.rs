//! Cross-crate integration tests: the threaded serving stack end to end —
//! vit-serve's scheduler and worker pool executing real vit-drt inference
//! through one shared `EngineCore`.
//!
//! Deadline arithmetic uses a large synthetic seconds-per-unit calibration
//! so the slack each request carries (minutes of wall time) dwarfs real
//! execution and queueing time — the scheduler's *decisions* are then
//! deterministic even when the test host is fully loaded, while the
//! workers still execute real inference.

use std::sync::Arc;
use std::time::{Duration, Instant};
use vit_drt::{DrtEngine, EngineCore};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::{
    Calibration, InferenceRequest, SchedulePolicy, Server, ServerConfig, ServerMetrics, SubmitError,
};
use vit_tensor::Tensor;

/// Wall seconds per LUT unit: big enough that queue wait and execution
/// (seconds) never erode a deadline by a meaningful number of units.
const SPU: f64 = 1e7;

fn shared_core() -> Arc<EngineCore> {
    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    engine.core().clone()
}

fn image() -> Tensor {
    Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 11)
}

/// A request whose remaining slack is `units` LUT resource units.
fn request(units: f64) -> InferenceRequest {
    InferenceRequest::new(
        image(),
        Instant::now() + Duration::from_secs_f64(units * SPU),
        ResourceKind::GpuTime,
    )
}

fn server(core: &Arc<EngineCore>, workers: usize, queue_depth: usize) -> Server {
    Server::start(
        Arc::clone(core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(workers)
            .queue_depth(queue_depth)
            .resource_kind(ResourceKind::GpuTime)
            .policy(SchedulePolicy::DrtDynamic)
            .build()
            .expect("test config validates"),
    )
}

/// Mean LUT resource of the configurations a run actually selected,
/// weighted by how often each was used.
fn mean_selected_resource(core: &EngineCore, metrics: &ServerMetrics) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for (config, count) in &metrics.config_histogram {
        let entry = core
            .lut()
            .entries()
            .iter()
            .find(|e| e.config == *config)
            .expect("every selected config comes from the LUT");
        total += entry.resource * *count as f64;
        n += count;
    }
    assert!(n > 0, "run completed no requests");
    total / n as f64
}

/// Four workers over one shared core, 120 requests with mixed deadlines —
/// impossible (below the cheapest path), tight, and loose — submitted
/// open-loop. Every submission must end up counted exactly once
/// (completed, or shed with a reason); nothing may vanish.
#[test]
fn worker_pool_accounts_for_every_submission() {
    let core = shared_core();
    let min = core.min_resource();
    let max = core.max_resource();
    let srv = server(&core, 4, 64);

    let total = 120;
    let mut impossible = 0;
    for i in 0..total {
        let units = match i % 2 {
            0 => {
                impossible += 1;
                min * 0.2 // cannot cover even the cheapest path
            }
            _ => {
                if i % 4 == 1 {
                    min * 1.5 // tight: a cheap path fits, the full does not
                } else {
                    max * 20.0 // loose
                }
            }
        };
        let admission = srv.submit(request(units)).expect("resource kind matches");
        assert_eq!(
            admission.is_admitted(),
            i % 2 != 0,
            "admission must be exactly the slack-vs-cheapest threshold"
        );
        assert_eq!(
            admission.ticket().is_some(),
            admission.is_admitted(),
            "exactly the admitted submissions carry tickets"
        );
    }
    let m = srv.shutdown();
    assert_eq!(m.submitted, total);
    assert!(
        m.accounts_for_all_submissions(),
        "completed {} + shed {} != submitted {}",
        m.completed,
        m.shed(),
        m.submitted
    );
    assert_eq!(m.shed_no_slack, impossible);
    assert_eq!(m.completed, total - impossible, "admitted requests all run");
    assert_eq!(m.deadline_misses, 0, "minutes of slack are never missed");
    assert!(core.cached_graphs() >= 2, "tight and loose paths differ");
}

/// Tighter deadlines must push the scheduler toward cheaper LUT
/// configurations: a server fed tight-slack requests selects a lower mean
/// resource than one fed loose-slack requests, which runs the full model.
#[test]
fn tighter_deadlines_select_cheaper_configs() {
    let core = shared_core();
    let min = core.min_resource();
    let max = core.max_resource();
    assert!(
        min * 1.5 < max,
        "LUT must span enough for a tight budget to exclude the full model"
    );

    let run = |units: f64| {
        let srv = server(&core, 4, 64);
        for _ in 0..12 {
            srv.submit(request(units)).expect("resource kind matches");
        }
        srv.shutdown()
    };

    let tight = run(min * 1.5);
    let loose = run(max * 25.0);
    assert_eq!(tight.completed, 12);
    assert_eq!(loose.completed, 12);
    let tight_mean = mean_selected_resource(&core, &tight);
    let loose_mean = mean_selected_resource(&core, &loose);
    assert!(
        tight_mean < loose_mean,
        "tight deadlines picked mean resource {tight_mean}, loose picked {loose_mean}"
    );
    // With 25x-full slack the scheduler always runs the full model.
    assert!((loose_mean - max).abs() < 1e-12);
    // A tight budget can never select a path costing more than the slack.
    assert!(tight_mean <= min * 1.5);
}

/// Overload stress: several producer threads hammer a small server (two
/// workers sharing one parallel execution pool, a shallow ingress queue)
/// with a mix of impossible and satisfiable deadlines, concurrently. The
/// server must not deadlock, and the metrics must conserve every
/// submission: completed + shed (for any reason) == submitted, with no
/// record dropped or double-counted under contention.
#[test]
fn concurrent_producers_under_overload_conserve_every_record() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    let core = shared_core();
    let min = core.min_resource();
    let srv = Server::start(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(2)
            .queue_depth(4)
            .exec_threads(2)
            // Replay compiled plans here so the concurrent-serving path
            // exercises the plan backend end to end.
            .use_plans(true)
            .build()
            .expect("test config validates"),
    );

    const PRODUCERS: usize = 6;
    const PER_PRODUCER: usize = 8;
    let accepted = AtomicUsize::new(0);
    let rejected = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for p in 0..PRODUCERS {
            let (srv, accepted, rejected) = (&srv, &accepted, &rejected);
            s.spawn(move || {
                for i in 0..PER_PRODUCER {
                    // A third of the load is infeasible (below the cheapest
                    // path) so admission-control shedding races with worker
                    // completion records; the rest is tight but satisfiable.
                    let units = if (p + i) % 3 == 0 {
                        min * 0.2
                    } else {
                        min * 1.5
                    };
                    if srv
                        .submit(request(units))
                        .expect("right resource kind")
                        .is_admitted()
                    {
                        accepted.fetch_add(1, Ordering::Relaxed);
                    } else {
                        rejected.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let m = srv.shutdown();

    let total = PRODUCERS * PER_PRODUCER;
    assert_eq!(m.submitted, total, "every submission is recorded");
    assert!(
        m.accounts_for_all_submissions(),
        "completed {} + shed {} != submitted {}",
        m.completed,
        m.shed(),
        m.submitted
    );
    assert_eq!(
        accepted.load(Ordering::Relaxed) + rejected.load(Ordering::Relaxed),
        total
    );
    // Shed-at-submit outcomes (no-slack + queue-full) are exactly the
    // rejected submissions; everything accepted ran or was shed late.
    assert_eq!(
        m.shed_no_slack + m.shed_queue_full,
        rejected.load(Ordering::Relaxed)
    );
    assert!(m.shed_no_slack > 0, "infeasible deadlines must be shed");
    assert!(m.completed > 0, "satisfiable deadlines must complete");
    assert_eq!(
        m.deadline_misses, 0,
        "minutes of synthetic slack are never missed"
    );
}

/// The wall-clock calibration path: measuring on this machine produces a
/// usable positive rate and round-trips seconds ↔ units.
#[test]
fn calibration_measures_a_positive_rate() {
    let core = shared_core();
    let cal = Calibration::measure(&core).expect("calibration inference runs");
    assert!(cal.secs_per_unit > 0.0 && cal.secs_per_unit.is_finite());
    let secs = cal.secs(core.max_resource());
    assert!((cal.units(secs) - core.max_resource()).abs() < 1e-9);
}

/// A traced server records the serving-layer events — one queue-wait span
/// per dispatched request, one admission or shed marker per submission —
/// alongside the engine spans its workers emit, and the combined stream is
/// a well-formed trace.
#[test]
fn traced_server_records_serving_spans() {
    use vit_drt::RunContext;
    use vit_trace::{validate, EventKind, Phase, RingBufferSink, TraceSink};

    let core = shared_core();
    let min = core.min_resource();
    let sink = Arc::new(RingBufferSink::new(1 << 16));
    let srv = Server::start_with(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(2)
            .queue_depth(16)
            .build()
            .expect("test config validates"),
        RunContext::default().with_sink(sink.clone() as Arc<dyn TraceSink>),
    );

    let total = 8;
    let mut infeasible = 0;
    for i in 0..total {
        let units = if i % 4 == 0 {
            infeasible += 1;
            min * 0.2 // shed at admission: below the cheapest path
        } else {
            min * 1.5
        };
        srv.submit(request(units)).expect("resource kind matches");
    }
    let m = srv.shutdown();
    assert_eq!(m.completed, total - infeasible);
    assert_eq!(m.shed(), infeasible);

    let events = sink.events();
    assert_eq!(sink.dropped(), 0, "ring must be big enough for this run");
    validate(&events).expect("traced serving run is well-formed");

    let count = |pred: &dyn Fn(&EventKind) -> bool| events.iter().filter(|e| pred(&e.kind)).count();
    let queue_waits = count(&|k| {
        matches!(
            k,
            EventKind::Phase {
                phase: Phase::QueueWait,
                ..
            }
        )
    });
    let admissions =
        count(&|k| matches!(k, EventKind::Instant { name, .. } if name == "admission"));
    let sheds = count(&|k| matches!(k, EventKind::Instant { name, .. } if name == "shed"));
    // With minutes of synthetic slack nothing sheds late, so every
    // dispatched (= admitted = completed) request has one queue-wait span.
    assert_eq!(queue_waits, m.completed);
    assert_eq!(admissions, m.completed);
    assert_eq!(sheds, m.shed());
    assert!(
        count(&|k| matches!(k, EventKind::Node { .. })) > 0,
        "worker inferences must emit engine node spans through the shared sink"
    );
}

/// Requests in the wrong resource dimension are rejected, not shed.
#[test]
fn wrong_resource_kind_is_an_error_not_a_shed() {
    let core = shared_core();
    let srv = Server::start(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(1.0),
        ServerConfig::default(),
    );
    let err = srv
        .submit(InferenceRequest::new(
            image(),
            Instant::now() + Duration::from_secs(5),
            ResourceKind::GpuEnergy,
        ))
        .unwrap_err();
    assert_eq!(
        err,
        SubmitError::WrongResourceKind {
            expected: ResourceKind::GpuTime,
            got: ResourceKind::GpuEnergy,
        }
    );
    let m = srv.shutdown();
    assert_eq!(m.submitted, 0, "a rejected request is not an outcome");
}

/// A batched server whose window expires with only one request queued must
/// serve that request exactly as an unbatched server would: it completes,
/// and no batch is recorded.
#[test]
fn batch_window_expiry_with_one_request_serves_it_unbatched() {
    let core = shared_core();
    let max = core.max_resource();
    let srv = Server::start(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(1)
            .max_batch(4)
            .batch_window(0.02)
            .build()
            .expect("test config validates"),
    );
    assert!(srv
        .submit(request(max * 20.0))
        .expect("resource kind matches")
        .is_admitted());
    let m = srv.shutdown();
    assert_eq!(m.completed, 1);
    assert_eq!(m.deadline_misses, 0);
    assert_eq!(
        m.batched_completions, 0,
        "a lone request after window expiry is a batch of one, served unbatched"
    );
    assert!((m.mean_batch_size - 1.0).abs() < 1e-12);
}

/// Continuous batching end to end on real threads: while one worker is busy
/// with a blocker request, a burst of same-slack requests queues up; when
/// the worker frees, they resolve to the same LUT configuration and
/// coalesce into batch-N passes. Every record is conserved and on time.
#[test]
fn queued_same_config_requests_coalesce_into_batches() {
    let core = shared_core();
    let max = core.max_resource();
    let srv = Server::start(
        Arc::clone(&core),
        Calibration::from_secs_per_unit(SPU),
        ServerConfig::builder()
            .workers(1)
            .queue_depth(32)
            .max_batch(8)
            .batch_window(0.5)
            .build()
            .expect("test config validates"),
    );
    // The blocker occupies the single worker while the burst queues up.
    srv.submit(request(max * 20.0)).expect("kind matches");
    for _ in 0..8 {
        assert!(srv
            .submit(request(max * 20.0))
            .expect("kind matches")
            .is_admitted());
    }
    let m = srv.shutdown();
    assert_eq!(m.submitted, 9);
    assert_eq!(m.completed, 9, "batching never loses a request");
    assert_eq!(m.deadline_misses, 0);
    assert!(
        m.batched_completions >= 2,
        "the queued burst must coalesce (batched {} of {})",
        m.batched_completions,
        m.completed
    );
    assert!(m.mean_batch_size > 1.0);
    // Coalesced or not, every completion ran the same loose-slack path, so
    // the histogram shows exactly one configuration: the full model.
    assert_eq!(m.config_histogram.len(), 1);
}

/// Batch-N execution is bit-identical to N sequential single-image runs —
/// and to itself — at every exec-pool width. This is the acceptance bar
/// that lets the server coalesce transparently: a request's output may not
/// depend on who it shared a batch with or how many threads executed it.
#[test]
fn batch_outputs_bit_identical_to_sequential_at_all_thread_counts() {
    use vit_drt::RunContext;
    use vit_graph::{ExecOptions, ExecScratch};

    let core = shared_core();
    let images: Vec<Tensor> = (0..4)
        .map(|i| Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 90 + i))
        .collect();
    let (entry, met) = core.select(core.max_resource());

    // Sequential single-image reference, computed once at one thread.
    let reference: Vec<Vec<f32>> = {
        let ctx = RunContext::default();
        let mut scratch = ExecScratch::new();
        images
            .iter()
            .map(|img| {
                core.run(&mut scratch, img, entry.clone(), met, &ctx)
                    .expect("single run succeeds")
                    .logits
                    .data()
                    .to_vec()
            })
            .collect()
    };

    for threads in [1usize, 2, 8] {
        let ctx = RunContext::default().with_exec(ExecOptions::threaded(threads));
        let mut scratch = ExecScratch::new();
        let batch = core
            .run_batch(&mut scratch, &images, entry.clone(), met, &ctx)
            .expect("batch run succeeds");
        assert_eq!(batch.len(), images.len());
        for (i, inf) in batch.iter().enumerate() {
            assert_eq!(
                inf.logits.data(),
                reference[i].as_slice(),
                "batch member {i} at {threads} exec threads diverged bitwise"
            );
        }
    }
}

/// Admission tickets are the correlation key of the redesigned API: every
/// admitted submission's ticket reappears on exactly one terminal record.
#[test]
fn admission_tickets_reappear_on_terminal_records() {
    use std::collections::BTreeSet;

    let core = shared_core();
    let max = core.max_resource();
    let srv = server(&core, 2, 32);
    let mut issued = BTreeSet::new();
    for _ in 0..10 {
        let admission = srv.submit(request(max * 20.0)).expect("kind matches");
        let ticket = admission.ticket().expect("loose slack is always admitted");
        assert!(issued.insert(ticket), "tickets must be unique");
    }
    let (m, outcomes) = srv.shutdown_outcomes();
    assert_eq!(m.completed, 10);
    let seen: BTreeSet<_> = outcomes
        .iter()
        .filter_map(|o| match o {
            vit_serve::Outcome::Completed(r) => r.ticket,
            vit_serve::Outcome::Shed(s) => s.ticket,
            vit_serve::Outcome::Failed(f) => f.ticket,
        })
        .collect();
    assert_eq!(seen, issued, "every ticket correlates with one record");
}
