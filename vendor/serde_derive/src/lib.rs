//! Offline stand-in for `serde_derive`.
//!
//! The workspace annotates many plain-data types with
//! `#[derive(Serialize, Deserialize)]`, but the only code that actually
//! serialized anything (the LUT) now uses a hand-rolled JSON module in
//! `vit-drt`. These derives therefore expand to nothing: they keep the
//! annotations compiling without pulling serde's proc-macro stack into an
//! offline build.

use proc_macro::TokenStream;

/// Inert `Serialize` derive: accepts the input (including `#[serde(...)]`
/// helper attributes) and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Inert `Deserialize` derive: accepts the input (including `#[serde(...)]`
/// helper attributes) and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
