//! # vit-profiler
//!
//! Profiling for DRT-ViT graphs: analytical FLOPs / parameter / DRAM-byte
//! accounting ([`flops`]) and a calibrated GPU latency + energy model
//! ([`gpu`]) standing in for the paper's NVIDIA TITAN V measurements.
//!
//! # Examples
//!
//! ```
//! use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
//! use vit_profiler::{GpuModel, Profile};
//!
//! # fn main() -> Result<(), vit_models::ModelError> {
//! let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2()))?;
//! let profile = Profile::with_gpu(&g, &GpuModel::titan_v());
//! let fuse_share = profile.flops_share("decoder.conv_fuse");
//! assert!(fuse_share > 0.5); // Conv2DFuse dominates (paper Fig. 3)
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod flops;
pub mod gpu;

pub use flops::{node_io_bytes, CostSummary, LayerCost, Profile};
pub use gpu::{GpuModel, GpuParams};
