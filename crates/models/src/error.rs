//! Error type shared by the model builders.

use std::fmt;
use vit_graph::GraphError;

/// Error from constructing a model graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A configuration value was out of its valid range.
    BadConfig(String),
    /// Graph construction failed (shape inference or structural error).
    Graph(GraphError),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadConfig(msg) => write!(f, "invalid model configuration: {msg}"),
            ModelError::Graph(e) => write!(f, "model graph construction failed: {e}"),
        }
    }
}

impl std::error::Error for ModelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ModelError::Graph(e) => Some(e),
            ModelError::BadConfig(_) => None,
        }
    }
}

impl From<GraphError> for ModelError {
    fn from(e: GraphError) -> Self {
        ModelError::Graph(e)
    }
}

/// Convenience alias for builder results.
pub type Result<T> = std::result::Result<T, ModelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_detail() {
        let e = ModelError::BadConfig("depth 9 out of range".to_string());
        assert!(e.to_string().contains("depth 9"));
    }
}
