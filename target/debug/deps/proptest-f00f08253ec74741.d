/root/repo/target/debug/deps/proptest-f00f08253ec74741.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f00f08253ec74741.rlib: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f00f08253ec74741.rmeta: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
