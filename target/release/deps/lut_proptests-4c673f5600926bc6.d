/root/repo/target/release/deps/lut_proptests-4c673f5600926bc6.d: crates/core/tests/lut_proptests.rs Cargo.toml

/root/repo/target/release/deps/liblut_proptests-4c673f5600926bc6.rmeta: crates/core/tests/lut_proptests.rs Cargo.toml

crates/core/tests/lut_proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
