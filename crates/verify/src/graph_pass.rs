//! Pass 1 — graph well-formedness.
//!
//! Re-derives everything [`vit_graph::Graph::add`] establishes at build
//! time and diffs it against what the graph actually stores, so graphs
//! that arrive from deserialization, [`vit_graph::Graph::from_raw_parts`],
//! or a regressed builder are caught before anything executes them.

use crate::diag::{Code, Diagnostic, Span};
use vit_graph::{Graph, LayerRole, Op, OpClass};

fn node_span(graph: &Graph, index: usize) -> Span {
    Span::Node {
        index,
        name: graph.nodes()[index].name.clone(),
    }
}

/// Runs the graph well-formedness pass, returning every finding (not just
/// the first, unlike [`vit_graph::Graph::check_invariants`]).
pub fn verify_graph(graph: &Graph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_names(graph, &mut diags);
    check_edges_and_shapes(graph, &mut diags);
    check_outputs(graph, &mut diags);
    check_liveness(graph, &mut diags);
    check_roles(graph, &mut diags);
    diags
}

/// `V004`: node names must be unique — the executor's slice-consistent
/// synthetic weights key on names, so a duplicate silently aliases two
/// layers' weights.
fn check_names(graph: &Graph, diags: &mut Vec<Diagnostic>) {
    let mut seen = std::collections::HashMap::new();
    for (i, n) in graph.nodes().iter().enumerate() {
        if let Some(first) = seen.insert(n.name.as_str(), i) {
            diags.push(
                Diagnostic::new(
                    Code::DuplicateName,
                    node_span(graph, i),
                    format!("node name `{}` already used by node {first}", n.name),
                )
                .with_help("rename one of the nodes; weights are shared by name"),
            );
        }
    }
}

/// `V002` on broken edges, then `V003`/`V001` by re-running shape
/// inference over the stored input shapes and diffing against the stored
/// output shape.
fn check_edges_and_shapes(graph: &Graph, diags: &mut Vec<Diagnostic>) {
    for (i, n) in graph.nodes().iter().enumerate() {
        let mut edges_ok = true;
        for id in &n.inputs {
            if id.index() >= i {
                edges_ok = false;
                let what = if id.index() == i {
                    "itself".to_string()
                } else if id.index() >= graph.len() {
                    format!("out-of-range node {}", id.index())
                } else {
                    format!("later node {}", id.index())
                };
                diags.push(
                    Diagnostic::new(
                        Code::BadTopology,
                        node_span(graph, i),
                        format!("input edge points at {what}"),
                    )
                    .with_help("nodes may only consume previously-added nodes"),
                );
            }
        }
        if !edges_ok {
            // Shapes cannot be re-derived over broken edges.
            continue;
        }
        let in_shapes: Vec<&[usize]> = n
            .inputs
            .iter()
            .map(|id| graph.node(*id).shape.as_slice())
            .collect();
        match n.op.infer_shape(&n.name, &in_shapes) {
            Err(e) => diags.push(Diagnostic::new(
                Code::InferFailure,
                node_span(graph, i),
                format!("shape inference fails for stored inputs: {}", e.msg),
            )),
            Ok(inferred) if inferred != n.shape => diags.push(
                Diagnostic::new(
                    Code::ShapeMismatch,
                    node_span(graph, i),
                    format!(
                        "stored shape {:?} disagrees with re-inferred shape {inferred:?}",
                        n.shape
                    ),
                )
                .with_help("the stored shape was edited or the builder regressed"),
            ),
            Ok(_) => {}
        }
    }
}

/// `V002` for out-of-range input/output ids and non-input nodes in the
/// input list; `V005` when no output is marked at all.
fn check_outputs(graph: &Graph, diags: &mut Vec<Diagnostic>) {
    for id in graph.input_ids() {
        if id.index() >= graph.len() {
            diags.push(Diagnostic::new(
                Code::BadTopology,
                Span::Global,
                format!("graph input id {} is out of range", id.index()),
            ));
        } else if !matches!(graph.node(*id).op, Op::Input { .. }) {
            diags.push(Diagnostic::new(
                Code::BadTopology,
                node_span(graph, id.index()),
                "graph input list points at a non-input node",
            ));
        }
    }
    match graph.output() {
        None => {
            if !graph.is_empty() {
                diags.push(
                    Diagnostic::new(Code::MissingOutput, Span::Global, "no graph output marked")
                        .with_help("call Graph::set_output on the prediction node"),
                );
            }
        }
        Some(out) if out.index() >= graph.len() => diags.push(Diagnostic::new(
            Code::BadTopology,
            Span::Global,
            format!("graph output id {} is out of range", out.index()),
        )),
        Some(_) => {}
    }
}

/// `V010`: every node must be backward-reachable from the graph output or
/// from an auxiliary head output (a consumerless [`LayerRole::Head`] node
/// — DETR's classification head is a deliberate second output). Inputs are
/// exempt: an unconsumed input is surfaced through the nodes that fail to
/// consume it.
fn check_liveness(graph: &Graph, diags: &mut Vec<Diagnostic>) {
    let Some(output) = graph.output() else {
        return; // V005 already fired; reachability is meaningless.
    };
    if output.index() >= graph.len() {
        return; // V002 already fired.
    }
    let counts = graph.consumer_counts();
    let mut live = vec![false; graph.len()];
    let mut stack: Vec<usize> = vec![output.index()];
    for (i, n) in graph.iter() {
        if counts[i.index()] == 0 && n.role == LayerRole::Head {
            stack.push(i.index());
        }
    }
    while let Some(i) = stack.pop() {
        if std::mem::replace(&mut live[i], true) {
            continue;
        }
        for id in &graph.nodes()[i].inputs {
            if id.index() < i {
                stack.push(id.index());
            }
        }
    }
    for (i, n) in graph.iter() {
        if !live[i.index()] && !matches!(n.op, Op::Input { .. }) {
            diags.push(
                Diagnostic::new(
                    Code::DeadNode,
                    node_span(graph, i.index()),
                    "unreachable from the graph output",
                )
                .with_help("remove the node or connect it; dead nodes distort cost totals"),
            );
        }
    }
}

/// `V006`: the decoder-role layer groups the paper's FLOPs split relies on
/// must stay consistent with their operator classes — a `FuseConv` /
/// `PredConv` / `FpnConv` / `PpmBranch` group must contain at least one
/// convolution, a `DecoderLinear` group at least one matmul or convolution
/// (UperNet's lateral projections are 1x1 convolutions), and no decoder
/// group may contain attention (the paper's decoders are attention-free).
/// Weight-free groups are exempt: they are pure plumbing (resize / slice /
/// add) that borrows its compute from another group, like Swin UperNet's
/// level-3 FPN output reusing the PPM bottleneck.
fn check_roles(graph: &Graph, diags: &mut Vec<Diagnostic>) {
    use std::collections::BTreeMap;
    // Group key: (discriminant string, stage/level). BTreeMap keeps
    // diagnostics deterministic.
    let mut groups: BTreeMap<(&'static str, usize), Vec<usize>> = BTreeMap::new();
    for (i, n) in graph.iter() {
        let key = match n.role {
            LayerRole::FuseConv => ("FuseConv", 0),
            LayerRole::PredConv => ("PredConv", 0),
            LayerRole::FpnConv { level } => ("FpnConv", level),
            LayerRole::PpmBranch { scale } => ("PpmBranch", scale),
            LayerRole::DecoderLinear { stage } => ("DecoderLinear", stage),
            _ => continue,
        };
        groups.entry(key).or_default().push(i.index());
        if n.op.class() == OpClass::Attention {
            diags.push(Diagnostic::new(
                Code::RoleMismatch,
                node_span(graph, i.index()),
                format!("attention operator carries decoder role {:?}", n.role),
            ));
        }
    }
    for ((kind, idx), members) in groups {
        if members.iter().all(|&m| {
            let n = &graph.nodes()[m];
            n.params(graph) == 0
        }) {
            continue; // Weight-free plumbing group (e.g. Swin FPN level 3).
        }
        let (wanted, ok): (&str, fn(OpClass) -> bool) = match kind {
            "DecoderLinear" => ("matmul or convolution", |c| {
                matches!(c, OpClass::Matmul | OpClass::Conv)
            }),
            "PpmBranch" | "FuseConv" | "PredConv" | "FpnConv" => {
                ("convolution", |c| c == OpClass::Conv)
            }
            _ => unreachable!(),
        };
        let has = members.iter().any(|&m| ok(graph.nodes()[m].op.class()));
        if !has {
            diags.push(
                Diagnostic::new(
                    Code::RoleMismatch,
                    node_span(graph, members[0]),
                    format!("{kind} group {idx} contains no {wanted} operator"),
                )
                .with_help("the paper's per-role cost aggregation would misreport this group"),
            );
        }
    }
}
