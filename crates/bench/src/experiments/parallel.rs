//! `repro bench`: sequential-vs-parallel wall-clock regression harness.
//!
//! Times the *full* (undynamic) execution path of each model with the
//! sequential interpreter and with the wavefront executor at several
//! thread counts, asserts the outputs are bit-identical, and (with
//! `--json`) writes the numbers to `BENCH_parallel_exec.json` so later
//! PRs have a perf trajectory to compare against.
//!
//! The report records the machine's hardware parallelism: speedups are
//! only physically possible when the machine has more than one core, and
//! honest numbers on a one-core CI box (ratio ≈ 1.0 or below) are still a
//! valid regression baseline.

use crate::{banner, f, Table};
use std::time::Instant;
use vit_graph::{ExecOptions, ExecScratch, Graph, WeightGen};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerVariant, SwinConfig, SwinVariant,
};
use vit_tensor::Tensor;

/// Flags for [`bench`].
#[derive(Debug, Default, Clone, Copy)]
pub struct BenchArgs {
    /// Write `BENCH_parallel_exec.json` next to the table output.
    pub json: bool,
    /// Smoke mode for CI: fewer repetitions and thread counts.
    pub quick: bool,
}

struct Case {
    name: &'static str,
    graph: Graph,
    image: Tensor,
}

fn cases() -> Vec<Case> {
    // Full paths (dynamic = full model) at an executable geometry. The
    // acceptance target is the SegFormer-B2 full path; B0 and Swin-T give
    // the trajectory breadth.
    let image = (64, 64);
    let mk_image = |seed| Tensor::rand_uniform(&[1, 3, image.0, image.1], 0.0, 1.0, seed);
    vec![
        Case {
            name: "segformer-b0",
            graph: build_segformer(&SegFormerConfig {
                image,
                ..SegFormerConfig::ade20k(SegFormerVariant::b0())
            })
            .expect("builds"),
            image: mk_image(1),
        },
        Case {
            name: "segformer-b2",
            graph: build_segformer(&SegFormerConfig {
                image,
                ..SegFormerConfig::ade20k(SegFormerVariant::b2())
            })
            .expect("builds"),
            image: mk_image(2),
        },
        Case {
            name: "swin-tiny-upernet",
            graph: build_swin_upernet(&SwinConfig {
                image,
                ..SwinConfig::ade20k(SwinVariant::tiny())
            })
            .expect("builds"),
            image: mk_image(3),
        },
    ]
}

struct ParallelPoint {
    threads: usize,
    ms: f64,
    bit_identical: bool,
}

struct CaseResult {
    name: &'static str,
    seq_ms: f64,
    parallel: Vec<ParallelPoint>,
}

/// Best-of-`reps` wall time of one full graph execution, in milliseconds.
fn time_run(
    scratch: &mut ExecScratch,
    gen: WeightGen,
    case: &Case,
    opts: &ExecOptions,
    reps: usize,
) -> (f64, Tensor) {
    let inputs = std::slice::from_ref(&case.image);
    let mut out = scratch
        .run_opts(gen, &case.graph, inputs, opts)
        .expect("bench graph runs"); // warm weights, graphs, buffers
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        out = scratch
            .run_opts(gen, &case.graph, inputs, opts)
            .expect("bench graph runs");
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    (best, out)
}

/// The seq-vs-parallel benchmark (`repro bench`).
pub fn bench(args: BenchArgs) {
    banner("bench — sequential vs parallel wavefront executor (full paths)");
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    let (reps, thread_counts): (usize, &[usize]) =
        if args.quick { (1, &[2]) } else { (3, &[2, 4]) };
    println!("hardware parallelism: {cores} core(s); best of {reps} timed run(s) per cell\n");

    let gen = WeightGen::new(0);
    let mut results = Vec::new();
    let mut t = Table::new(&[
        "model",
        "seq ms",
        "threads",
        "par ms",
        "speedup",
        "bit-identical",
    ]);
    for case in cases() {
        let mut scratch = ExecScratch::new();
        let (seq_ms, seq_out) =
            time_run(&mut scratch, gen, &case, &ExecOptions::sequential(), reps);
        let mut parallel = Vec::new();
        for &threads in thread_counts {
            let opts = ExecOptions::threaded(threads);
            let (ms, out) = time_run(&mut scratch, gen, &case, &opts, reps);
            let identical = out == seq_out;
            assert!(
                identical,
                "{}: parallel output at {threads} threads diverged from sequential",
                case.name
            );
            t.row(&[
                case.name.to_string(),
                f(seq_ms, 2),
                threads.to_string(),
                f(ms, 2),
                f(seq_ms / ms, 2),
                identical.to_string(),
            ]);
            parallel.push(ParallelPoint {
                threads,
                ms,
                bit_identical: identical,
            });
        }
        results.push(CaseResult {
            name: case.name,
            seq_ms,
            parallel,
        });
    }
    t.print();

    if args.json {
        let path = "BENCH_parallel_exec.json";
        std::fs::write(path, render_json(cores, reps, args.quick, &results))
            .expect("write benchmark JSON");
        println!("\nwrote {path}");
    }
}

fn render_json(cores: usize, reps: usize, quick: bool, results: &[CaseResult]) -> String {
    let mut s = String::from("{\n");
    s.push_str("  \"benchmark\": \"parallel_exec\",\n");
    s.push_str(&format!("  \"hardware_parallelism\": {cores},\n"));
    s.push_str(&format!("  \"timed_runs_per_cell\": {reps},\n"));
    s.push_str(&format!("  \"quick\": {quick},\n"));
    s.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        s.push_str("    {\n");
        s.push_str(&format!("      \"model\": \"{}\",\n", r.name));
        s.push_str(&format!("      \"sequential_ms\": {:.3},\n", r.seq_ms));
        s.push_str("      \"parallel\": [\n");
        for (j, p) in r.parallel.iter().enumerate() {
            s.push_str(&format!(
                "        {{\"threads\": {}, \"ms\": {:.3}, \"speedup\": {:.3}, \"bit_identical\": {}}}{}\n",
                p.threads,
                p.ms,
                r.seq_ms / p.ms,
                p.bit_identical,
                if j + 1 < r.parallel.len() { "," } else { "" }
            ));
        }
        s.push_str("      ]\n");
        s.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    s.push_str("  ]\n}\n");
    s
}
