/root/repo/target/release/examples/quickstart-926ca7ee2dbef4bd.d: crates/core/../../examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-926ca7ee2dbef4bd.rmeta: crates/core/../../examples/quickstart.rs Cargo.toml

crates/core/../../examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
