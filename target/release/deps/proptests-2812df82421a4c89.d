/root/repo/target/release/deps/proptests-2812df82421a4c89.d: crates/graph/tests/proptests.rs

/root/repo/target/release/deps/proptests-2812df82421a4c89: crates/graph/tests/proptests.rs

crates/graph/tests/proptests.rs:
