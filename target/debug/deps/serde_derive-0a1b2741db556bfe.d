/root/repo/target/debug/deps/serde_derive-0a1b2741db556bfe.d: vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-0a1b2741db556bfe: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
