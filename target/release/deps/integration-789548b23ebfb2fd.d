/root/repo/target/release/deps/integration-789548b23ebfb2fd.d: crates/core/../../tests/integration.rs Cargo.toml

/root/repo/target/release/deps/libintegration-789548b23ebfb2fd.rmeta: crates/core/../../tests/integration.rs Cargo.toml

crates/core/../../tests/integration.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
