/root/repo/target/debug/deps/vit_serve-e0b13a22d7b54758.d: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

/root/repo/target/debug/deps/libvit_serve-e0b13a22d7b54758.rlib: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

/root/repo/target/debug/deps/libvit_serve-e0b13a22d7b54758.rmeta: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

crates/serve/src/lib.rs:
crates/serve/src/metrics.rs:
crates/serve/src/policy.rs:
crates/serve/src/queue.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
