//! Seeded synthetic scene generation.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vit_tensor::Tensor;

/// The dataset a synthetic scene mimics (geometry and class count only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// ADE20K-like: 150 classes, 512x512 by default.
    Ade20k,
    /// Cityscapes-like: 19 classes, 1024x2048 by default.
    Cityscapes,
    /// COCO-like detection imagery: 91 classes, 480x640 by default.
    Coco,
}

impl Dataset {
    /// Number of semantic classes.
    pub fn num_classes(&self) -> usize {
        match self {
            Dataset::Ade20k => 150,
            Dataset::Cityscapes => 19,
            Dataset::Coco => 91,
        }
    }

    /// Native image size `(height, width)`.
    pub fn image_size(&self) -> (usize, usize) {
        match self {
            Dataset::Ade20k => (512, 512),
            Dataset::Cityscapes => (1024, 2048),
            Dataset::Coco => (480, 640),
        }
    }
}

/// One synthetic sample: an image and its ground-truth label map.
#[derive(Debug, Clone)]
pub struct SceneSample {
    /// RGB image `[1, 3, h, w]` with values in `[0, 1]`.
    pub image: Tensor,
    /// Ground-truth labels `[1, h, w]` (class index stored as `f32`).
    pub labels: Tensor,
}

/// Deterministic scene generator.
///
/// Scenes are built from a handful of seeded "blobs": each blob is an
/// anisotropic Gaussian support painting one class; pixels take the label of
/// the strongest blob. Class appearance is a class-specific base color plus
/// a smooth spatial gradient and pixel noise, which gives the segmentation
/// networks real structure to respond to.
///
/// # Examples
///
/// ```
/// use vit_data::{Dataset, SceneGenerator};
///
/// let gen = SceneGenerator::new(Dataset::Ade20k, 42);
/// let s = gen.sample_sized(0, 64, 64);
/// assert_eq!(s.image.shape(), &[1, 3, 64, 64]);
/// assert_eq!(s.labels.shape(), &[1, 64, 64]);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct SceneGenerator {
    dataset: Dataset,
    seed: u64,
}

struct Blob {
    cx: f32,
    cy: f32,
    sx: f32,
    sy: f32,
    class: usize,
    strength: f32,
}

impl SceneGenerator {
    /// Creates a generator for a dataset with a global seed.
    pub fn new(dataset: Dataset, seed: u64) -> Self {
        SceneGenerator { dataset, seed }
    }

    /// The dataset this generator mimics.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// Generates sample `index` at the dataset's native size.
    pub fn sample(&self, index: u64) -> SceneSample {
        let (h, w) = self.dataset.image_size();
        self.sample_sized(index, h, w)
    }

    /// Generates sample `index` at an explicit size (used by the executable
    /// small-scale experiments).
    pub fn sample_sized(&self, index: u64, h: usize, w: usize) -> SceneSample {
        let mut rng = StdRng::seed_from_u64(self.seed ^ index.wrapping_mul(0x9e3779b97f4a7c15));
        let classes = self.dataset.num_classes();
        let n_blobs = rng.gen_range(6..14);
        let background = rng.gen_range(0..classes);
        let blobs: Vec<Blob> = (0..n_blobs)
            .map(|_| Blob {
                cx: rng.gen_range(0.0..1.0),
                cy: rng.gen_range(0.0..1.0),
                sx: rng.gen_range(0.08..0.4),
                sy: rng.gen_range(0.08..0.4),
                class: rng.gen_range(0..classes),
                strength: rng.gen_range(0.5..1.5),
            })
            .collect();
        // Per-class base colors, deterministic in the class index and seed.
        let color = |class: usize, ch: usize| -> f32 {
            let mut z = self.seed ^ ((class * 3 + ch) as u64).wrapping_mul(0x2545f4914f6cdd1d);
            z ^= z >> 33;
            z = z.wrapping_mul(0xff51afd7ed558ccd);
            z ^= z >> 33;
            (z % 1000) as f32 / 1000.0
        };
        let mut labels = Tensor::zeros(&[1, h, w]);
        let mut image = Tensor::zeros(&[1, 3, h, w]);
        let ld = labels.data_mut();
        // Gradient direction for the whole scene.
        let (gx, gy) = (rng.gen_range(-0.2..0.2), rng.gen_range(-0.2..0.2));
        let mut noise = StdRng::seed_from_u64(self.seed ^ index.wrapping_add(17));
        for y in 0..h {
            let fy = y as f32 / h as f32;
            for x in 0..w {
                let fx = x as f32 / w as f32;
                let mut best = 0.15; // background threshold
                let mut class = background;
                for b in &blobs {
                    let dx = (fx - b.cx) / b.sx;
                    let dy = (fy - b.cy) / b.sy;
                    let v = b.strength * (-(dx * dx + dy * dy)).exp();
                    if v > best {
                        best = v;
                        class = b.class;
                    }
                }
                ld[y * w + x] = class as f32;
                for ch in 0..3 {
                    let base = color(class, ch);
                    let grad = gx * fx + gy * fy;
                    let n: f32 = noise.gen_range(-0.05..0.05);
                    image.data_mut()[(ch * h + y) * w + x] = (base + grad + n).clamp(0.0, 1.0);
                }
            }
        }
        SceneSample { image, labels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_are_deterministic() {
        let gen = SceneGenerator::new(Dataset::Ade20k, 7);
        let a = gen.sample_sized(3, 32, 32);
        let b = gen.sample_sized(3, 32, 32);
        assert_eq!(a.image, b.image);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn different_indices_differ() {
        let gen = SceneGenerator::new(Dataset::Ade20k, 7);
        let a = gen.sample_sized(0, 32, 32);
        let b = gen.sample_sized(1, 32, 32);
        assert_ne!(a.labels, b.labels);
    }

    #[test]
    fn labels_are_valid_classes() {
        let gen = SceneGenerator::new(Dataset::Cityscapes, 1);
        let s = gen.sample_sized(0, 64, 64);
        for &l in s.labels.data() {
            assert!((0.0..19.0).contains(&l));
            assert_eq!(l, l.trunc());
        }
    }

    #[test]
    fn image_values_in_unit_range() {
        let gen = SceneGenerator::new(Dataset::Coco, 5);
        let s = gen.sample_sized(2, 48, 48);
        for &v in s.image.data() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn scene_has_multiple_classes() {
        let gen = SceneGenerator::new(Dataset::Ade20k, 11);
        let s = gen.sample_sized(4, 64, 64);
        let mut seen = std::collections::HashSet::new();
        for &l in s.labels.data() {
            seen.insert(l as usize);
        }
        assert!(seen.len() >= 3, "only {} classes in scene", seen.len());
    }

    #[test]
    fn native_sizes_match_dataset() {
        assert_eq!(Dataset::Ade20k.image_size(), (512, 512));
        assert_eq!(Dataset::Cityscapes.image_size(), (1024, 2048));
        assert_eq!(Dataset::Ade20k.num_classes(), 150);
        assert_eq!(Dataset::Cityscapes.num_classes(), 19);
    }
}
