//! Multi-head self-attention.
//!
//! The kernel takes separate query and key/value sequences so that it also
//! covers SegFormer's spatial-reduction attention (queries at full resolution,
//! keys/values at reduced resolution) and Swin's window attention (callers
//! partition windows into the batch dimension).

use crate::error::{invalid_argument, invalid_shape, shape_mismatch, Result};
use crate::ops::activation::softmax_last_dim;
use crate::ops::matmul::{bmm, linear};
use crate::tensor::Tensor;

/// Weights of one multi-head attention block.
///
/// All four projection weights follow the `[out_features, in_features]`
/// convention of [`linear`].
#[derive(Debug, Clone)]
pub struct AttentionWeights {
    /// Query projection, `[dim, dim]`.
    pub wq: Tensor,
    /// Key projection, `[dim, dim]`.
    pub wk: Tensor,
    /// Value projection, `[dim, dim]`.
    pub wv: Tensor,
    /// Output projection, `[dim, dim]`.
    pub wo: Tensor,
}

impl AttentionWeights {
    /// Seeded synthetic weights for a block of embedding size `dim`.
    pub fn synthetic(dim: usize, seed: u64) -> Self {
        AttentionWeights {
            wq: Tensor::rand_kaiming(&[dim, dim], dim, seed),
            wk: Tensor::rand_kaiming(&[dim, dim], dim, seed.wrapping_add(1)),
            wv: Tensor::rand_kaiming(&[dim, dim], dim, seed.wrapping_add(2)),
            wo: Tensor::rand_kaiming(&[dim, dim], dim, seed.wrapping_add(3)),
        }
    }
}

/// Splits `[b, n, dim]` into `[b * heads, n, dim / heads]`.
fn split_heads(x: &Tensor, heads: usize) -> Result<Tensor> {
    let (b, n, d) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let hd = d / heads;
    // [b, n, heads, hd] -> [b, heads, n, hd] -> [b*heads, n, hd]
    let x = x.reshape(&[b, n, heads, hd])?;
    let x = x.permute(&[0, 2, 1, 3])?;
    x.reshape(&[b * heads, n, hd])
}

/// Inverse of [`split_heads`].
fn merge_heads(x: &Tensor, heads: usize) -> Result<Tensor> {
    let (bh, n, hd) = (x.shape()[0], x.shape()[1], x.shape()[2]);
    let b = bh / heads;
    let x = x.reshape(&[b, heads, n, hd])?;
    let x = x.permute(&[0, 2, 1, 3])?;
    x.reshape(&[b, n, heads * hd])
}

/// Multi-head scaled-dot-product attention.
///
/// `query` is `[b, n, dim]` and `kv` is `[b, m, dim]`; the result is
/// `[b, n, dim]`. Standard self-attention passes the same tensor for both;
/// spatial-reduction attention passes a shorter `kv`.
///
/// # Errors
///
/// Returns an error when ranks are not 3, batch or embedding dimensions
/// disagree, or `dim` is not divisible by `heads`.
///
/// # Examples
///
/// ```
/// use vit_tensor::{Tensor, ops::{AttentionWeights, multi_head_attention}};
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// let x = Tensor::rand_uniform(&[1, 16, 32], -1.0, 1.0, 0);
/// let w = AttentionWeights::synthetic(32, 1);
/// let y = multi_head_attention(&x, &x, &w, 4)?;
/// assert_eq!(y.shape(), &[1, 16, 32]);
/// # Ok(())
/// # }
/// ```
pub fn multi_head_attention(
    query: &Tensor,
    kv: &Tensor,
    weights: &AttentionWeights,
    heads: usize,
) -> Result<Tensor> {
    if query.rank() != 3 || kv.rank() != 3 {
        return Err(invalid_shape(
            "attention",
            format!(
                "expected rank-3 [b, n, dim] tensors, got {:?} and {:?}",
                query.shape(),
                kv.shape()
            ),
        ));
    }
    let (b, _n, d) = (query.shape()[0], query.shape()[1], query.shape()[2]);
    if kv.shape()[0] != b || kv.shape()[2] != d {
        return Err(shape_mismatch(
            "attention",
            format!("kv of shape [{b}, m, {d}]"),
            format!("{:?}", kv.shape()),
        ));
    }
    if heads == 0 || d % heads != 0 {
        return Err(invalid_argument(
            "attention",
            format!("dim {d} not divisible by heads {heads}"),
        ));
    }
    let q = linear(query, &weights.wq, None)?;
    let k = linear(kv, &weights.wk, None)?;
    let v = linear(kv, &weights.wv, None)?;
    let qh = split_heads(&q, heads)?;
    let kh = split_heads(&k, heads)?;
    let vh = split_heads(&v, heads)?;
    // scores = q @ k^T / sqrt(head_dim)
    let kt = {
        let (bh, m, hd) = (kh.shape()[0], kh.shape()[1], kh.shape()[2]);
        kh.permute(&[0, 2, 1])?.reshape(&[bh, hd, m])?
    };
    let scale = 1.0 / ((d / heads) as f32).sqrt();
    let scores = bmm(&qh, &kt)?.scale(scale);
    let probs = softmax_last_dim(&scores)?;
    let ctx = bmm(&probs, &vh)?;
    let merged = merge_heads(&ctx, heads)?;
    linear(&merged, &weights.wo, None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(dim: usize) -> Tensor {
        let mut t = Tensor::zeros(&[dim, dim]);
        for i in 0..dim {
            t.set(&[i, i], 1.0);
        }
        t
    }

    #[test]
    fn attention_output_shape_matches_query() {
        let q = Tensor::rand_uniform(&[2, 10, 16], -1.0, 1.0, 1);
        let kv = Tensor::rand_uniform(&[2, 4, 16], -1.0, 1.0, 2);
        let w = AttentionWeights::synthetic(16, 3);
        let y = multi_head_attention(&q, &kv, &w, 4).unwrap();
        assert_eq!(y.shape(), &[2, 10, 16]);
    }

    #[test]
    fn attention_with_identity_weights_averages_values() {
        // With identity projections and identical tokens, the output of
        // attention equals the (single) token value itself.
        let dim = 8;
        let token: Vec<f32> = (0..dim).map(|v| v as f32 * 0.1).collect();
        let mut data = Vec::new();
        for _ in 0..5 {
            data.extend_from_slice(&token);
        }
        let x = Tensor::from_vec(data, &[1, 5, dim]).unwrap();
        let w = AttentionWeights {
            wq: identity(dim),
            wk: identity(dim),
            wv: identity(dim),
            wo: identity(dim),
        };
        let y = multi_head_attention(&x, &x, &w, 2).unwrap();
        for t in 0..5 {
            #[allow(clippy::needless_range_loop)]
            for i in 0..dim {
                let v = y.data()[t * dim + i];
                assert!((v - token[i]).abs() < 1e-5, "token {t} dim {i}: {v}");
            }
        }
    }

    #[test]
    fn attention_attends_to_matching_key() {
        // Two orthogonal kv tokens; a query aligned with token 0's key should
        // produce (approximately) token 0's value when logits are large.
        let dim = 4;
        let big = 50.0f32;
        let kv = Tensor::from_vec(
            vec![
                big, 0.0, 0.0, 0.0, // token 0
                0.0, big, 0.0, 0.0, // token 1
            ],
            &[1, 2, dim],
        )
        .unwrap();
        let q = Tensor::from_vec(vec![big, 0.0, 0.0, 0.0], &[1, 1, dim]).unwrap();
        let w = AttentionWeights {
            wq: identity(dim),
            wk: identity(dim),
            wv: identity(dim),
            wo: identity(dim),
        };
        let y = multi_head_attention(&q, &kv, &w, 1).unwrap();
        // Output should be very close to kv token 0's value.
        assert!((y.data()[0] - big).abs() < 1.0, "{:?}", y.data());
        assert!(y.data()[1].abs() < 1.0);
    }

    #[test]
    fn split_merge_heads_round_trip() {
        let x = Tensor::rand_uniform(&[2, 6, 12], -1.0, 1.0, 7);
        let s = split_heads(&x, 3).unwrap();
        assert_eq!(s.shape(), &[6, 6, 4]);
        let m = merge_heads(&s, 3).unwrap();
        assert_eq!(m, x);
    }

    #[test]
    fn attention_rejects_bad_heads() {
        let x = Tensor::zeros(&[1, 4, 10]);
        let w = AttentionWeights::synthetic(10, 0);
        assert!(multi_head_attention(&x, &x, &w, 3).is_err());
        assert!(multi_head_attention(&x, &x, &w, 0).is_err());
    }

    #[test]
    fn attention_rejects_mismatched_kv() {
        let q = Tensor::zeros(&[1, 4, 8]);
        let kv = Tensor::zeros(&[2, 4, 8]);
        let w = AttentionWeights::synthetic(8, 0);
        assert!(multi_head_attention(&q, &kv, &w, 2).is_err());
    }
}
