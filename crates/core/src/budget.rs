//! Resource-budget traces: the time-varying constraints a real-time system
//! feeds the engine (autonomous driving load spikes, conferencing
//! contention, ...).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The shape of a budget trace, expressed as a fraction of the full model's
/// resource cost.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TracePattern {
    /// Constant budget.
    Constant(f64),
    /// Smooth sinusoidal load between `min` and `max` with the given period
    /// (in inferences).
    Sinusoid {
        /// Lowest budget fraction.
        min: f64,
        /// Highest budget fraction.
        max: f64,
        /// Period in steps.
        period: usize,
    },
    /// Mostly `base`, dropping to `spike` with probability `p` per step
    /// (sudden contention).
    RandomSpikes {
        /// Normal budget fraction.
        base: f64,
        /// Budget fraction during a spike.
        spike: f64,
        /// Spike probability per step.
        p: f64,
    },
    /// Alternates between `high` and `low` every `period` steps.
    Step {
        /// First phase budget.
        high: f64,
        /// Second phase budget.
        low: f64,
        /// Steps per phase.
        period: usize,
    },
}

/// A deterministic budget trace generator.
///
/// # Examples
///
/// ```
/// use vit_drt::{BudgetTrace, TracePattern};
///
/// let trace = BudgetTrace::new(
///     TracePattern::Sinusoid { min: 0.6, max: 1.0, period: 8 }, 42);
/// let budgets: Vec<f64> = trace.take(16).collect();
/// assert!(budgets.iter().all(|&b| (0.6..=1.0).contains(&b)));
/// ```
#[derive(Debug, Clone)]
pub struct BudgetTrace {
    pattern: TracePattern,
    rng: StdRng,
    step: usize,
}

impl BudgetTrace {
    /// Creates a trace with a deterministic seed.
    pub fn new(pattern: TracePattern, seed: u64) -> Self {
        BudgetTrace {
            pattern,
            rng: StdRng::seed_from_u64(seed),
            step: 0,
        }
    }
}

impl Iterator for BudgetTrace {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        let t = self.step;
        self.step += 1;
        Some(match self.pattern {
            TracePattern::Constant(v) => v,
            TracePattern::Sinusoid { min, max, period } => {
                let phase = t as f64 / period.max(1) as f64 * std::f64::consts::TAU;
                min + (max - min) * 0.5 * (1.0 + phase.sin())
            }
            TracePattern::RandomSpikes { base, spike, p } => {
                if self.rng.gen_bool(p.clamp(0.0, 1.0)) {
                    spike
                } else {
                    base
                }
            }
            TracePattern::Step { high, low, period } => {
                if (t / period.max(1)).is_multiple_of(2) {
                    high
                } else {
                    low
                }
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_trace_is_constant() {
        let v: Vec<f64> = BudgetTrace::new(TracePattern::Constant(0.8), 0)
            .take(5)
            .collect();
        assert_eq!(v, vec![0.8; 5]);
    }

    #[test]
    fn sinusoid_stays_in_range_and_oscillates() {
        let v: Vec<f64> = BudgetTrace::new(
            TracePattern::Sinusoid {
                min: 0.5,
                max: 1.0,
                period: 10,
            },
            0,
        )
        .take(30)
        .collect();
        assert!(v.iter().all(|&b| (0.5 - 1e-9..=1.0 + 1e-9).contains(&b)));
        let spread =
            v.iter().cloned().fold(f64::MIN, f64::max) - v.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 0.4, "spread {spread}");
    }

    #[test]
    fn spikes_are_deterministic_per_seed() {
        let p = TracePattern::RandomSpikes {
            base: 1.0,
            spike: 0.5,
            p: 0.3,
        };
        let a: Vec<f64> = BudgetTrace::new(p, 7).take(50).collect();
        let b: Vec<f64> = BudgetTrace::new(p, 7).take(50).collect();
        assert_eq!(a, b);
        assert!(a.contains(&0.5));
        assert!(a.contains(&1.0));
    }

    #[test]
    fn step_alternates() {
        let v: Vec<f64> = BudgetTrace::new(
            TracePattern::Step {
                high: 1.0,
                low: 0.6,
                period: 2,
            },
            0,
        )
        .take(8)
        .collect();
        assert_eq!(v, vec![1.0, 1.0, 0.6, 0.6, 1.0, 1.0, 0.6, 0.6]);
    }
}
