//! Std-only intra-process parallelism substrate: a caller-participating
//! worker pool ([`ThreadPool`]), a reusable allocation free-list
//! ([`BufferPool`]), and the [`ExecCtx`] handle kernels take to opt into
//! both.
//!
//! # Determinism contract
//!
//! Every parallel kernel built on this module partitions its *output*
//! space into disjoint chunks and computes each output element with
//! exactly the same floating-point operation sequence as the sequential
//! kernel. No reduction ever crosses a chunk boundary, so results are
//! bit-identical to the single-threaded reference at any thread count and
//! under any scheduling order. The differential test suite
//! (`crates/graph/tests/differential.rs`) holds this contract under
//! property testing.
//!
//! # Scheduling model
//!
//! [`ThreadPool::new`]`(threads)` spawns `threads - 1` background workers;
//! the thread that opens a [`ThreadPool::scope`] *helps* drain the shared
//! queue while it waits, so total concurrency equals `threads`. Jobs may
//! spawn further jobs into the same scope (the graph executor's wavefront
//! does this as nodes become ready), and jobs may open nested scopes on
//! the same pool (intra-kernel tiling inside a node job does this); the
//! caller-helps rule makes both compose without deadlock — a blocked
//! scope always makes progress by executing queued work itself.

use std::collections::VecDeque;
use std::marker::PhantomData;
use std::mem;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use vit_trace::TraceSink;

use crate::tensor::Tensor;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// The exact chunk decomposition [`ThreadPool::for_each_row_chunk`] uses
/// for a buffer of `total_len` elements in rows of `row_len`, split into
/// at most `chunks` pieces: successive `(start, len)` ranges, row-aligned,
/// covering `[0, total_len)` exactly once.
///
/// This is *the* tiling oracle: the executor derives its piece size from
/// the same arithmetic, so a static analyzer (vit-verify's exec-safety
/// pass) that consumes these ranges reasons about the identical chunks
/// the kernels will write at run time — the two cannot drift apart.
///
/// Degenerate inputs are handled the way the executor handles them:
/// `row_len == 0` or an empty buffer yields one full-buffer chunk
/// (nothing to split), and `total_len` not being a multiple of `row_len`
/// is the *caller's* contract violation (the executor debug-asserts it);
/// this function still row-aligns every boundary so a misaligned tail is
/// visible to the analyzer as a short final chunk.
///
/// # Examples
///
/// ```
/// use vit_tensor::par::row_chunks;
/// // 6 rows of 2 elements over 4 threads: ceil(6/4)=2 rows per piece.
/// assert_eq!(row_chunks(12, 2, 4), vec![(0, 4), (4, 4), (8, 4)]);
/// // One thread: a single chunk.
/// assert_eq!(row_chunks(12, 2, 1), vec![(0, 12)]);
/// ```
pub fn row_chunks(total_len: usize, row_len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if total_len == 0 {
        return vec![(0, 0)];
    }
    if row_len == 0 {
        return vec![(0, total_len)];
    }
    let rows = total_len / row_len;
    let chunks = chunks.clamp(1, rows.max(1));
    if chunks <= 1 {
        return vec![(0, total_len)];
    }
    let rows_per = rows.div_ceil(chunks);
    let piece = rows_per * row_len;
    let mut out = Vec::with_capacity(total_len.div_ceil(piece));
    let mut start = 0;
    while start < total_len {
        let len = piece.min(total_len - start);
        out.push((start, len));
        start += len;
    }
    out
}

struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    /// Signaled when a job is pushed, on shutdown, and when a scope
    /// completes (so helping callers re-check their completion predicate).
    work: Condvar,
}

impl PoolShared {
    fn lock(&self) -> MutexGuard<'_, PoolState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn push(&self, job: Job) {
        self.lock().queue.push_back(job);
        self.work.notify_all();
    }
}

/// A fixed-size worker pool over one shared FIFO job queue.
///
/// The pool is `Send + Sync`; serving layers share one pool across all
/// request workers through an `Arc` so concurrent inferences cooperate on
/// the same physical cores instead of oversubscribing them.
///
/// # Examples
///
/// ```
/// use vit_tensor::par::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
///
/// let pool = ThreadPool::new(4);
/// let hits = AtomicUsize::new(0);
/// pool.scope(|s| {
///     for _ in 0..16 {
///         s.spawn(|_| {
///             hits.fetch_add(1, Ordering::Relaxed);
///         });
///     }
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 16);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
    threads: usize,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.threads)
            .finish()
    }
}

/// Book-keeping for one [`ThreadPool::scope`]: outstanding-job count and
/// the panic flag. Lives behind an `Arc` so job wrappers stay `'static`.
struct ScopeCore {
    shared: Arc<PoolShared>,
    remaining: AtomicUsize,
    panicked: AtomicBool,
}

impl ScopeCore {
    fn finish_one(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Waking under the lock closes the race against a helper that
            // just checked `remaining` and is about to wait.
            let _guard = self.shared.lock();
            self.shared.work.notify_all();
        }
    }
}

/// A spawn handle scoped to one [`ThreadPool::scope`] call; jobs receive a
/// fresh `&Scope` and may spawn further jobs into the same scope.
pub struct Scope<'scope> {
    core: Arc<ScopeCore>,
    // Invariant over 'scope (the standard scoped-spawn variance guard).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    /// Enqueues `f` on the pool. The closure may borrow from the
    /// environment of the enclosing [`ThreadPool::scope`] call, which does
    /// not return until every spawned job has completed.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        self.core.remaining.fetch_add(1, Ordering::AcqRel);
        let core = Arc::clone(&self.core);
        let job: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope = Scope {
                core: Arc::clone(&core),
                _marker: PhantomData,
            };
            if catch_unwind(AssertUnwindSafe(|| f(&scope))).is_err() {
                core.panicked.store(true, Ordering::Release);
            }
            core.finish_one();
        });
        // SAFETY: `scope()` blocks (helping the queue) until `remaining`
        // reaches zero, which happens only after this closure has run to
        // completion and dropped `f` together with everything it borrows;
        // the borrows therefore strictly outlive the job. This is the
        // standard scoped-threads lifetime-erasure argument.
        let job: Job = unsafe { mem::transmute(job) };
        self.core.shared.push(job);
    }
}

impl ThreadPool {
    /// Creates a pool with a total concurrency of `threads` (at least 1):
    /// `threads - 1` background workers plus the scope-opening caller,
    /// which participates while it waits.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState {
                queue: VecDeque::new(),
                shutdown: false,
            }),
            work: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || loop {
                    let job = {
                        let mut st = shared.lock();
                        loop {
                            if let Some(j) = st.queue.pop_front() {
                                break Some(j);
                            }
                            if st.shutdown {
                                break None;
                            }
                            st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
                        }
                    };
                    match job {
                        Some(j) => j(), // wrappers catch panics themselves
                        None => return,
                    }
                })
            })
            .collect();
        ThreadPool {
            shared,
            workers,
            threads,
        }
    }

    /// Total concurrency of this pool (workers plus the helping caller).
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a [`Scope`] on which jobs borrowing the environment
    /// can be spawned; returns only after every job (including jobs
    /// spawned by jobs) has completed. The calling thread drains the
    /// queue while it waits.
    ///
    /// # Panics
    ///
    /// Panics when any spawned job panicked, or re-raises the body's own
    /// panic — in both cases only after all jobs finished, so no borrow
    /// escapes.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        let core = Arc::new(ScopeCore {
            shared: Arc::clone(&self.shared),
            remaining: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
        });
        let scope = Scope {
            core: Arc::clone(&core),
            _marker: PhantomData,
        };
        // Catch a panic in the scope *body* so already-spawned jobs are
        // still waited for below; unwinding past the drain loop would let
        // them run against a destroyed stack frame.
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Help until every job of THIS scope is done. Jobs popped here may
        // belong to other scopes sharing the pool; running them is still
        // progress and is what makes nested scopes deadlock-free.
        while core.remaining.load(Ordering::Acquire) != 0 {
            let job = {
                let mut st = self.shared.lock();
                loop {
                    if let Some(j) = st.queue.pop_front() {
                        break Some(j);
                    }
                    if core.remaining.load(Ordering::Acquire) == 0 {
                        break None;
                    }
                    st = self.shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
                }
            };
            if let Some(j) = job {
                j();
            }
        }
        let result = match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        assert!(
            !core.panicked.load(Ordering::Acquire),
            "a task spawned on the thread pool panicked"
        );
        result
    }

    /// Splits `data` into at most `chunks` contiguous pieces of
    /// `chunk_len`-aligned length and runs `f(chunk_index, start_offset,
    /// piece)` for each, in parallel when the pool has more than one
    /// thread. `data.len()` must be a multiple of `chunk_len`.
    ///
    /// Each element of `data` is written by exactly one invocation, and
    /// chunk boundaries never split a `chunk_len` row, so kernels that
    /// compute each row with sequential-order arithmetic stay bit-identical
    /// to their single-threaded form.
    pub fn for_each_row_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, chunks: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Send + Sync,
    {
        debug_assert_eq!(data.len() % chunk_len.max(1), 0);
        // The decomposition is computed by the same oracle the static
        // exec-safety analyzer consults (`row_chunks`), so the proved
        // chunk geometry is the executed chunk geometry.
        let plan = row_chunks(data.len(), chunk_len, chunks);
        if plan.len() <= 1 || data.is_empty() {
            f(0, 0, data);
            return;
        }
        let piece = plan[0].1;
        self.scope(|s| {
            for (i, part) in data.chunks_mut(piece).enumerate() {
                debug_assert_eq!((i * piece, part.len()), plan[i]);
                let f = &f;
                s.spawn(move |_| f(i, i * piece, part));
            }
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.lock();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// A bounded free-list of `Vec<f32>` allocations for intermediate
/// tensors, shared across threads behind a mutex.
///
/// Lifetime rule: a buffer enters the pool only once nothing references
/// the tensor it backed (the graph executor recycles a node's output when
/// its last consumer finishes), and leaves it zeroed and resized before
/// it backs a new tensor — recycling is therefore invisible to kernel
/// results.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: Mutex<Vec<Vec<f32>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    zeroed_elems: AtomicU64,
}

/// A snapshot of a [`BufferPool`]'s monotonic counters, taken with
/// [`BufferPool::stats`]. Tracing layers diff two snapshots around a run
/// to attribute pool behavior to it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BufferPoolStats {
    /// `take_zeroed` calls served by reusing a free allocation.
    pub hits: u64,
    /// `take_zeroed` calls that had to allocate fresh.
    pub misses: u64,
    /// Total f32 elements zeroed across all `take_zeroed` calls (the
    /// pool's main hidden cost).
    pub zeroed_elems: u64,
}

/// Maximum buffers retained per pool; beyond this, returned allocations
/// are simply dropped. Bounds worst-case idle memory at roughly this many
/// of the largest intermediate tensors.
const BUFFER_POOL_CAP: usize = 64;

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// A zeroed buffer of exactly `numel` elements, reusing the best
    /// fitting free allocation when one exists.
    pub fn take_zeroed(&self, numel: usize) -> Vec<f32> {
        let reused = {
            let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
            // Best fit: the smallest capacity that already holds `numel`,
            // else the largest available (it will grow once and then stick).
            let best = free
                .iter()
                .enumerate()
                .filter(|(_, v)| v.capacity() >= numel)
                .min_by_key(|(_, v)| v.capacity())
                .map(|(i, _)| i)
                .or_else(|| {
                    free.iter()
                        .enumerate()
                        .max_by_key(|(_, v)| v.capacity())
                        .map(|(i, _)| i)
                });
            best.map(|i| free.swap_remove(i))
        };
        self.zeroed_elems.fetch_add(numel as u64, Ordering::Relaxed);
        match reused {
            Some(mut v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                v.clear();
                v.resize(numel, 0.0);
                v
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                vec![0.0; numel]
            }
        }
    }

    /// Returns an allocation to the pool (dropped when the pool is full).
    pub fn recycle(&self, v: Vec<f32>) {
        if v.capacity() == 0 {
            return;
        }
        let mut free = self.free.lock().unwrap_or_else(|e| e.into_inner());
        if free.len() < BUFFER_POOL_CAP {
            free.push(v);
        }
    }

    /// Number of free buffers currently held (observability for reuse
    /// tests).
    pub fn free_buffers(&self) -> usize {
        self.free.lock().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// A snapshot of the pool's monotonic hit/miss/zeroing counters.
    ///
    /// The counters are updated with relaxed atomics on the allocation
    /// path — cheap enough to stay on unconditionally — and only read when
    /// a tracing layer diffs snapshots around a run.
    pub fn stats(&self) -> BufferPoolStats {
        BufferPoolStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            zeroed_elems: self.zeroed_elems.load(Ordering::Relaxed),
        }
    }
}

/// Per-call execution context for kernels: where to run (an optional
/// pool) and where to allocate outputs (an optional buffer pool).
///
/// `ExecCtx::default()` is the sequential, plainly-allocating context;
/// every `*_ctx` kernel called with it behaves exactly like its classic
/// counterpart.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecCtx<'a> {
    /// Worker pool for intra-kernel tiling; `None` runs sequentially.
    pub pool: Option<&'a ThreadPool>,
    /// Allocation free-list for kernel outputs; `None` allocates fresh.
    pub bufs: Option<&'a BufferPool>,
    /// Trace sink for kernel-level events; `None` (or a disabled sink)
    /// records nothing. Kernels must gate all tracing work on
    /// [`ExecCtx::trace_enabled`].
    pub sink: Option<&'a dyn TraceSink>,
    /// Route GEMM-backed kernels to the naive oracle loops in
    /// [`crate::ops::reference`] instead of the packed micro-kernels.
    /// Used by the tolerance tier to replay whole models against the
    /// oracle; production paths leave this `false`.
    pub reference: bool,
}

impl<'a> ExecCtx<'a> {
    /// The number of chunks worth splitting work into (1 when
    /// sequential).
    pub fn parallelism(&self) -> usize {
        self.pool.map_or(1, ThreadPool::threads)
    }

    /// Whether an enabled trace sink is attached — the single branch that
    /// keeps tracing zero-cost when disabled.
    pub fn trace_enabled(&self) -> bool {
        self.sink.is_some_and(TraceSink::enabled)
    }

    /// A zeroed output tensor for `shape`, drawn from the buffer pool
    /// when one is attached.
    pub fn alloc_zeroed(&self, shape: &[usize]) -> Tensor {
        match self.bufs {
            Some(b) => {
                let numel = shape.iter().product();
                Tensor::from_vec(b.take_zeroed(numel), shape)
                    .expect("pool buffer resized to the exact element count")
            }
            None => Tensor::zeros(shape),
        }
    }

    /// Runs `f(chunk_index, start_offset, piece)` over row-aligned chunks
    /// of `data`: sequentially in one piece without a pool, tiled across
    /// the pool's threads with one.
    pub fn for_each_row_chunk<T, F>(&self, data: &mut [T], chunk_len: usize, f: F)
    where
        T: Send,
        F: Fn(usize, usize, &mut [T]) + Send + Sync,
    {
        match self.pool {
            Some(p) if p.threads() > 1 => p.for_each_row_chunk(data, chunk_len, p.threads(), f),
            _ => f(0, 0, data),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn pool_runs_all_jobs_and_joins() {
        let pool = ThreadPool::new(3);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..100 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn jobs_can_spawn_jobs() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    count.fetch_add(1, Ordering::Relaxed);
                    for _ in 0..3 {
                        s.spawn(|_| {
                            count.fetch_add(1, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 4 + 12);
    }

    #[test]
    fn nested_scopes_do_not_deadlock() {
        let pool = ThreadPool::new(2);
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| {
                    // A job opening its own scope on the same pool is the
                    // intra-kernel-tiling-inside-a-node-job pattern.
                    pool.scope(|inner| {
                        for _ in 0..4 {
                            inner.spawn(|_| {
                                count.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.threads(), 1);
        let mut touched = false;
        pool.scope(|s| {
            s.spawn(|_| {}); // exercised by the helping caller itself
        });
        pool.scope(|_| touched = true);
        assert!(touched);
    }

    #[test]
    #[should_panic(expected = "task spawned on the thread pool panicked")]
    fn job_panic_propagates_to_scope() {
        let pool = ThreadPool::new(2);
        pool.scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
    }

    #[test]
    fn pool_survives_a_job_panic() {
        let pool = ThreadPool::new(2);
        let _ = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| s.spawn(|_| panic!("boom")));
        }));
        let count = AtomicUsize::new(0);
        pool.scope(|s| {
            for _ in 0..8 {
                s.spawn(|_| {
                    count.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(count.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn row_chunks_cover_disjointly() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 24];
        pool.for_each_row_chunk(&mut data, 2, 4, |_, start, piece| {
            for (i, v) in piece.iter_mut().enumerate() {
                *v = (start + i) as u32 + 1;
            }
        });
        let expect: Vec<u32> = (1..=24).collect();
        assert_eq!(data, expect);
    }

    #[test]
    fn row_chunks_partition_exactly() {
        for (total, row, threads) in [
            (24usize, 2usize, 4usize),
            (24, 2, 1),
            (24, 24, 8),
            (7, 7, 3),
            (30, 5, 4),
            (64, 4, 8),
            (0, 4, 8),
            (12, 0, 2),
        ] {
            let plan = row_chunks(total, row, threads);
            // Chunks are contiguous, in order, and cover [0, total) exactly.
            let mut cursor = 0;
            for &(start, len) in &plan {
                assert_eq!(
                    start, cursor,
                    "gap/overlap at {start} ({total},{row},{threads})"
                );
                cursor += len;
            }
            assert_eq!(cursor, total);
            // Row alignment: no boundary splits a row (when rows divide).
            if row > 0 && total % row == 0 {
                for &(start, _) in &plan {
                    assert_eq!(start % row, 0);
                }
            }
        }
    }

    #[test]
    fn row_chunks_match_executor_dispatch() {
        let pool = ThreadPool::new(4);
        for (rows, row_len) in [(6usize, 2usize), (17, 3), (1, 5), (8, 1)] {
            let total = rows * row_len;
            let plan = row_chunks(total, row_len, pool.threads());
            let seen = Mutex::new(Vec::new());
            let mut data = vec![0u8; total];
            pool.for_each_row_chunk(&mut data, row_len, pool.threads(), |i, start, piece| {
                seen.lock().unwrap().push((i, start, piece.len()));
            });
            let mut seen = seen.into_inner().unwrap();
            seen.sort_unstable();
            let expect: Vec<(usize, usize, usize)> = plan
                .iter()
                .enumerate()
                .map(|(i, &(s, l))| (i, s, l))
                .collect();
            assert_eq!(seen, expect, "rows={rows} row_len={row_len}");
        }
    }

    #[test]
    fn buffer_pool_reuses_allocations() {
        let pool = BufferPool::new();
        let a = pool.take_zeroed(100);
        let ptr = a.as_ptr();
        pool.recycle(a);
        assert_eq!(pool.free_buffers(), 1);
        let b = pool.take_zeroed(50);
        assert_eq!(b.as_ptr(), ptr, "smaller request reuses the allocation");
        assert_eq!(b.len(), 50);
        assert!(b.iter().all(|&v| v == 0.0), "reused buffers are zeroed");
    }

    #[test]
    fn buffer_pool_counts_hits_misses_and_zeroing() {
        let pool = BufferPool::new();
        let a = pool.take_zeroed(100); // miss
        pool.recycle(a);
        let _b = pool.take_zeroed(50); // hit
        let st = pool.stats();
        assert_eq!(st.hits, 1);
        assert_eq!(st.misses, 1);
        assert_eq!(st.zeroed_elems, 150);
    }

    #[test]
    fn exec_ctx_default_is_sequential() {
        let ctx = ExecCtx::default();
        assert_eq!(ctx.parallelism(), 1);
        let t = ctx.alloc_zeroed(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        let mut data = vec![0.0f32; 6];
        ctx.for_each_row_chunk(&mut data, 3, |idx, start, piece| {
            assert_eq!((idx, start, piece.len()), (0, 0, 6));
        });
    }
}
