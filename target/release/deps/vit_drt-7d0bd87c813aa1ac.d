/root/repo/target/release/deps/vit_drt-7d0bd87c813aa1ac.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/release/deps/libvit_drt-7d0bd87c813aa1ac.rlib: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

/root/repo/target/release/deps/libvit_drt-7d0bd87c813aa1ac.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
