/root/repo/target/release/deps/proptests-1021cc8c6ee1b399.d: crates/resilience/tests/proptests.rs Cargo.toml

/root/repo/target/release/deps/libproptests-1021cc8c6ee1b399.rmeta: crates/resilience/tests/proptests.rs Cargo.toml

crates/resilience/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
