/root/repo/target/debug/examples/quickstart-9461e3ea52c226cf.d: crates/core/../../examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-9461e3ea52c226cf: crates/core/../../examples/quickstart.rs

crates/core/../../examples/quickstart.rs:
