//! A bounded, blocking earliest-deadline-first priority queue.
//!
//! `pop` always returns the queued item with the *earliest* deadline —
//! the EDF discipline, which is optimal for meeting deadlines on a single
//! resource. FIFO arrival order is kept only as a tie-break so equal
//! deadlines stay fair.

use parking_lot::{Condvar, Mutex};
use std::collections::BinaryHeap;
use std::fmt;
use std::time::Duration;

/// Error from a non-blocking push.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum PushError {
    /// The queue is at capacity.
    Full,
    /// The queue has been closed.
    Closed,
}

impl fmt::Display for PushError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PushError::Full => f.write_str("EDF queue is at capacity"),
            PushError::Closed => f.write_str("EDF queue is closed"),
        }
    }
}

impl std::error::Error for PushError {}

/// Result of a blocking pop.
#[derive(Debug)]
pub enum PopResult<T> {
    /// The earliest-deadline item.
    Item(T),
    /// The queue is closed and drained.
    Closed,
}

struct Entry<K: Ord, T> {
    deadline: K,
    seq: u64,
    item: T,
}

// BinaryHeap is a max-heap; invert the comparison so the *earliest*
// deadline (then lowest sequence number) is at the top.
impl<K: Ord, T> Ord for Entry<K, T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .deadline
            .cmp(&self.deadline)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

impl<K: Ord, T> PartialOrd for Entry<K, T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl<K: Ord, T> PartialEq for Entry<K, T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}

impl<K: Ord, T> Eq for Entry<K, T> {}

struct State<K: Ord, T> {
    heap: BinaryHeap<Entry<K, T>>,
    next_seq: u64,
    closed: bool,
}

/// The shared EDF queue (cheaply clonable via `Arc` by callers; the queue
/// itself is `Sync`).
pub struct EdfQueue<K: Ord, T> {
    state: Mutex<State<K, T>>,
    not_empty: Condvar,
    not_full: Condvar,
    capacity: usize,
}

impl<K: Ord, T> EdfQueue<K, T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn bounded(capacity: usize) -> Self {
        assert!(capacity > 0, "EDF queue needs capacity >= 1");
        EdfQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                next_seq: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
            capacity,
        }
    }

    /// Current number of queued items.
    pub fn len(&self) -> usize {
        self.state.lock().heap.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts without blocking.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`EdfQueue::close`].
    pub fn try_push(&self, deadline: K, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock();
        if s.closed {
            return Err(PushError::Closed);
        }
        if s.heap.len() >= self.capacity {
            return Err(PushError::Full);
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry {
            deadline,
            seq,
            item,
        });
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Inserts, blocking while the queue is at capacity.
    ///
    /// # Errors
    ///
    /// [`PushError::Closed`] after [`EdfQueue::close`].
    pub fn push(&self, deadline: K, item: T) -> Result<(), PushError> {
        let mut s = self.state.lock();
        while !s.closed && s.heap.len() >= self.capacity {
            self.not_full.wait(&mut s);
        }
        if s.closed {
            return Err(PushError::Closed);
        }
        let seq = s.next_seq;
        s.next_seq += 1;
        s.heap.push(Entry {
            deadline,
            seq,
            item,
        });
        drop(s);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Removes and returns the earliest-deadline item, blocking while the
    /// queue is empty. Returns [`PopResult::Closed`] once the queue is
    /// closed *and* drained — remaining items are always delivered.
    pub fn pop(&self) -> PopResult<(K, T)> {
        let mut s = self.state.lock();
        loop {
            if let Some(e) = s.heap.pop() {
                drop(s);
                self.not_full.notify_one();
                return PopResult::Item((e.deadline, e.item));
            }
            if s.closed {
                return PopResult::Closed;
            }
            self.not_empty.wait(&mut s);
        }
    }

    /// Like [`EdfQueue::pop`] but gives up after `timeout` when neither an
    /// item nor a close arrives.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<PopResult<(K, T)>> {
        let mut s = self.state.lock();
        loop {
            if let Some(e) = s.heap.pop() {
                drop(s);
                self.not_full.notify_one();
                return Some(PopResult::Item((e.deadline, e.item)));
            }
            if s.closed {
                return Some(PopResult::Closed);
            }
            if self.not_empty.wait_for(&mut s, timeout).timed_out() {
                return None;
            }
        }
    }

    /// Closes the queue: subsequent pushes fail, poppers drain the
    /// remaining items and then observe [`PopResult::Closed`].
    pub fn close(&self) {
        self.state.lock().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order_with_fifo_tiebreak() {
        let q: EdfQueue<u64, &str> = EdfQueue::bounded(8);
        q.try_push(30, "late").unwrap();
        q.try_push(10, "first-early").unwrap();
        q.try_push(10, "second-early").unwrap();
        q.try_push(20, "mid").unwrap();
        let order: Vec<&str> = (0..4)
            .map(|_| match q.pop() {
                PopResult::Item((_, s)) => s,
                PopResult::Closed => unreachable!(),
            })
            .collect();
        assert_eq!(order, ["first-early", "second-early", "mid", "late"]);
    }

    #[test]
    fn bounded_capacity_rejects_then_accepts() {
        let q: EdfQueue<u64, u32> = EdfQueue::bounded(2);
        q.try_push(1, 1).unwrap();
        q.try_push(2, 2).unwrap();
        assert_eq!(q.try_push(3, 3), Err(PushError::Full));
        match q.pop() {
            PopResult::Item((_, v)) => assert_eq!(v, 1),
            PopResult::Closed => unreachable!(),
        }
        q.try_push(3, 3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let q: EdfQueue<u64, u32> = EdfQueue::bounded(4);
        q.try_push(5, 50).unwrap();
        q.close();
        assert_eq!(q.try_push(6, 60), Err(PushError::Closed));
        assert!(matches!(q.pop(), PopResult::Item((5, 50))));
        assert!(matches!(q.pop(), PopResult::Closed));
    }

    #[test]
    fn concurrent_producers_consumers_deliver_everything() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let q: Arc<EdfQueue<u64, u64>> = Arc::new(EdfQueue::bounded(4));
        let sum = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for p in 0..3u64 {
                let q = q.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        q.push(p * 50 + i, p * 50 + i).unwrap();
                    }
                });
            }
            for _ in 0..3 {
                let q = q.clone();
                let sum = sum.clone();
                s.spawn(move || {
                    while let PopResult::Item((_, v)) = q.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                    }
                });
            }
            s.spawn(|| {
                // Give producers time to finish, then close.
                while !q.is_empty() || sum.load(Ordering::Relaxed) < (0..150u64).sum::<u64>() {
                    std::thread::yield_now();
                }
                q.close();
            });
        });
        assert_eq!(sum.load(Ordering::Relaxed), (0..150u64).sum::<u64>());
    }
}
