//! Golden test: the chrome-trace JSON schema is pinned byte-for-byte.
//!
//! External tools (chrome://tracing, Perfetto, jq pipelines in CI) parse
//! this document; any change to field names, ordering, category strings,
//! or timestamp formatting is a breaking change to the export contract
//! and must show up as a diff in this file.

use vit_trace::{chrome_trace_json, validate, EventKind, Phase, TraceEvent};

/// One event of every kind, with hand-picked stamps exercising ordering
/// (the Sched span at 500 ns sorts between the Phase at 0 and the Node at
/// 1000 even though its seq is higher than the Node's).
fn fixture() -> Vec<TraceEvent> {
    vec![
        TraceEvent {
            seq: 0,
            thread: 0,
            kind: EventKind::Phase {
                phase: Phase::Run,
                detail: "segformer-b0".to_string(),
                start_ns: 0,
                end_ns: 5000,
            },
        },
        TraceEvent {
            seq: 1,
            thread: 1,
            kind: EventKind::Node {
                name: "enc.conv".to_string(),
                op: "Conv2d".to_string(),
                start_ns: 1000,
                end_ns: 2500,
                flops: 1234,
                bytes: 4096,
            },
        },
        TraceEvent {
            seq: 2,
            thread: 1,
            kind: EventKind::Sched {
                node: "enc.conv".to_string(),
                spawn_ns: 500,
                start_ns: 1000,
                ready_depth: 3,
            },
        },
        TraceEvent {
            seq: 3,
            thread: 0,
            kind: EventKind::Counter {
                name: "buffer_pool.hits".to_string(),
                value: 7,
                at_ns: 4000,
            },
        },
        TraceEvent {
            seq: 4,
            thread: 0,
            kind: EventKind::Instant {
                name: "shed".to_string(),
                detail: "queue_full".to_string(),
                at_ns: 4500,
            },
        },
    ]
}

const GOLDEN: &str = r#"{
  "traceEvents": [
    {"name": "run", "cat": "phase", "ph": "X", "ts": 0.000, "dur": 5.000, "pid": 1, "tid": 0, "args": {"detail": "segformer-b0", "seq": 0}},
    {"name": "queued", "cat": "sched", "ph": "X", "ts": 0.500, "dur": 0.500, "pid": 1, "tid": 1, "args": {"node": "enc.conv", "ready_depth": 3, "seq": 2}},
    {"name": "Conv2d", "cat": "node", "ph": "X", "ts": 1.000, "dur": 1.500, "pid": 1, "tid": 1, "args": {"node": "enc.conv", "flops": 1234, "bytes": 4096, "seq": 1}},
    {"name": "buffer_pool.hits", "cat": "counter", "ph": "C", "ts": 4.000, "pid": 1, "tid": 0, "args": {"value": 7}},
    {"name": "shed", "cat": "instant", "ph": "i", "s": "t", "ts": 4.500, "pid": 1, "tid": 0, "args": {"detail": "queue_full", "seq": 4}}
  ],
  "displayTimeUnit": "ms"
}
"#;

#[test]
fn chrome_trace_schema_is_pinned() {
    let events = fixture();
    assert_eq!(validate(&events), Ok(()), "the fixture itself is valid");
    let json = chrome_trace_json(&events);
    assert_eq!(
        json, GOLDEN,
        "chrome-trace JSON schema drifted from the pinned golden document"
    );
}

#[test]
fn export_is_deterministic_and_input_order_independent() {
    let mut reversed = fixture();
    reversed.reverse();
    assert_eq!(chrome_trace_json(&fixture()), chrome_trace_json(&reversed));
}
