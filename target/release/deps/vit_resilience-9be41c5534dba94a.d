/root/repo/target/release/deps/vit_resilience-9be41c5534dba94a.d: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs Cargo.toml

/root/repo/target/release/deps/libvit_resilience-9be41c5534dba94a.rmeta: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs Cargo.toml

crates/resilience/src/lib.rs:
crates/resilience/src/accel_sweep.rs:
crates/resilience/src/accuracy.rs:
crates/resilience/src/config.rs:
crates/resilience/src/fidelity.rs:
crates/resilience/src/pareto.rs:
crates/resilience/src/sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
