/root/repo/target/release/deps/vit_graph-a11b41696009a942.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/release/deps/libvit_graph-a11b41696009a942.rlib: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/release/deps/libvit_graph-a11b41696009a942.rmeta: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
