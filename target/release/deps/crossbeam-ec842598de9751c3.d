/root/repo/target/release/deps/crossbeam-ec842598de9751c3.d: vendor/crossbeam/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libcrossbeam-ec842598de9751c3.rmeta: vendor/crossbeam/src/lib.rs Cargo.toml

vendor/crossbeam/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
