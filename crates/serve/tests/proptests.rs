//! Property tests for the serving scheduler: EDF ordering under arbitrary
//! interleavings, and admission control never letting through a request
//! whose slack cannot cover the cheapest LUT entry.

use proptest::collection::vec;
use proptest::prelude::*;
use vit_drt::{EngineCore, EngineFamily, Lut};
use vit_fault::FaultPlan;
use vit_models::{SegFormerDynamic, SegFormerVariant};
use vit_resilience::{DynConfig, TradeoffPoint};
use vit_serve::{
    admissible, simulate, EdfQueue, PopResult, RecoveryPolicy, SchedulePolicy, SimArrival,
    SimConfig,
};

/// A synthetic core whose LUT costs 1/2/4 units.
fn tiny_core() -> EngineCore {
    let point = |r: f64, a: f64| TradeoffPoint {
        label: String::new(),
        config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
            &SegFormerVariant::b0(),
            [1, 1, 1, 1],
            ((r * 64.0) as usize).max(4),
        )),
        resource: r,
        norm_resource: r / 4.0,
        norm_miou: a,
    };
    let lut = Lut::from_points(
        "proptest",
        &[point(1.0, 0.6), point(2.0, 0.85), point(4.0, 1.0)],
    );
    EngineCore::new(
        EngineFamily::SegFormer(SegFormerVariant::b0()),
        150,
        (64, 64),
        lut,
    )
    .unwrap()
}

proptest! {
    /// Whatever order deadlines are pushed in, pops come out in
    /// nondecreasing deadline order, and equal deadlines come out in
    /// arrival (FIFO) order.
    #[test]
    fn edf_pop_order_is_sorted_with_fifo_ties(deadlines in vec(0u64..16, 1..64)) {
        let q: EdfQueue<u64, usize> = EdfQueue::bounded(64);
        for (i, d) in deadlines.iter().enumerate() {
            q.try_push(*d, i).unwrap();
        }
        q.close();
        let mut popped = Vec::new();
        while let PopResult::Item(it) = q.pop() {
            popped.push(it);
        }
        prop_assert_eq!(popped.len(), deadlines.len());
        for w in popped.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "deadlines out of order: {:?}", w);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "FIFO tie-break violated: {:?}", w);
            }
        }
    }

    /// Admission is exactly the slack-vs-cheapest-cost threshold.
    #[test]
    fn admission_never_admits_slack_below_cheapest(
        slack in -100.0f64..100.0,
        cheapest in 0.0f64..50.0,
    ) {
        prop_assert_eq!(admissible(slack, cheapest), slack >= cheapest);
    }

    /// Under arbitrary arrival patterns, the simulator (a) accounts for
    /// every request, (b) sheds at admission *exactly* the arrivals whose
    /// slack is below the cheapest path, and (c) never runs a request
    /// whose budget could not cover the cheapest entry.
    #[test]
    fn simulator_conserves_requests_and_enforces_admission(
        raw in vec((0.0f64..50.0, 0.0f64..12.0), 1..80),
        workers in 1usize..5,
        queue_depth in 1usize..12,
    ) {
        let core = tiny_core();
        let arrivals: Vec<SimArrival> = raw
            .iter()
            .map(|(time, slack)| SimArrival::new(*time, *slack))
            .collect();
        let metrics = simulate(
            &core,
            &SimConfig::new(workers, queue_depth, SchedulePolicy::DrtDynamic, 1.0),
            &arrivals,
        );
        prop_assert_eq!(metrics.submitted, arrivals.len());
        prop_assert!(metrics.accounts_for_all_submissions());
        // With secs_per_unit = 1.0 a slack below the cheapest cost (1.0)
        // can never be admitted, and nothing else sheds for that reason.
        let impossible = arrivals
            .iter()
            .filter(|a| !admissible(a.slack, core.min_resource()))
            .count();
        prop_assert_eq!(metrics.shed_no_slack, impossible);
        // Every completed request ran a path at least as cheap as its
        // whole slack allowed: delivered accuracy only comes from real
        // LUT rows.
        for (config, _) in &metrics.config_histogram {
            prop_assert!(core.lut().entries().iter().any(|e| e.config == *config));
        }
    }

    /// Queue-edge discipline: a request whose slack expires while it waits
    /// in the queue is dropped at dispatch (shed, never executed) and is
    /// counted exactly once — even with retries in flight on other
    /// requests, conservation holds and `goodput + deadline_miss_rate`
    /// always partitions the offered load.
    #[test]
    fn in_queue_expiry_is_counted_once_even_under_chaos(
        raw in vec((0.0f64..30.0, 0.9f64..6.0), 1..60),
        crash in 0.0f64..0.5,
        bitflip in 0.0f64..0.5,
        seed in 0u64..1000,
    ) {
        let core = tiny_core();
        let arrivals: Vec<SimArrival> = raw
            .iter()
            .map(|(time, slack)| SimArrival::new(*time, *slack))
            .collect();
        // One slow worker + tight slacks: some admitted requests expire
        // in-queue, while injected faults force retries on others.
        let cfg = SimConfig::new(1, 8, SchedulePolicy::DrtDynamic, 1.0)
            .with_fault(FaultPlan {
                seed,
                crash_rate: crash,
                bitflip_rate: bitflip,
                stall_rate: 0.0,
                stall_factor: 1.0,
                replay_rate: 0.0,
            })
            .with_recovery(RecoveryPolicy::DegradedRetry { max_retries: 2 });
        let m = simulate(&core, &cfg, &arrivals);
        prop_assert_eq!(m.submitted, arrivals.len());
        // Exactly-once accounting: completed + shed + fault-failed
        // partitions the submissions — an in-queue expiry can never also
        // appear as a completion or failure, and a retried request still
        // lands in exactly one bucket.
        prop_assert!(m.accounts_for_all_submissions());
        // Each retry was caused by an observed fault.
        prop_assert!(m.faults_seen >= m.retries);
        // Every fault-failure observed at least one fault.
        prop_assert!(m.faults_seen >= m.fault_failures);
        prop_assert!(m.degraded_completions <= m.completed);
        // goodput and miss-rate partition the offered load exactly.
        prop_assert!((m.goodput + m.deadline_miss_rate - 1.0).abs() < 1e-9);
    }

    /// A chaos run is a pure function of (plan seed, arrivals): two
    /// simulations with identical inputs agree on every counter.
    #[test]
    fn chaos_simulation_is_replayable(
        raw in vec((0.0f64..20.0, 1.0f64..8.0), 1..40),
        seed in 0u64..1000,
    ) {
        let core = tiny_core();
        let arrivals: Vec<SimArrival> = raw
            .iter()
            .map(|(time, slack)| SimArrival::new(*time, *slack))
            .collect();
        let cfg = SimConfig::new(2, 8, SchedulePolicy::DrtDynamic, 1.0)
            .with_fault(FaultPlan {
                seed,
                crash_rate: 0.2,
                bitflip_rate: 0.1,
                stall_rate: 0.1,
                stall_factor: 8.0,
                replay_rate: 0.05,
            });
        let a = simulate(&core, &cfg, &arrivals);
        let b = simulate(&core, &cfg, &arrivals);
        prop_assert_eq!(a.completed, b.completed);
        prop_assert_eq!(a.fault_failures, b.fault_failures);
        prop_assert_eq!(a.faults_seen, b.faults_seen);
        prop_assert_eq!(a.retries, b.retries);
        prop_assert_eq!(a.degraded_completions, b.degraded_completions);
        prop_assert_eq!(a.p99_latency, b.p99_latency);
        prop_assert_eq!(a.failure_histogram, b.failure_histogram);
    }
}

proptest! {
    /// Multi-tenant admission accounting: whatever mix of tenants, weights,
    /// and queue shares the fuzzer picks — including a heavy tenant trying
    /// to starve the rest — every tenant's submissions are partitioned
    /// exactly by `goodput + miss_rate + shed_rate == 1`, and the global
    /// counters conserve every request.
    #[test]
    fn tenant_rates_partition_submissions_under_arbitrary_load(
        raw in vec((0.0f64..30.0, 0.5f64..8.0, 0u32..3), 1..80),
        w0 in 0.1f64..4.0,
        w1 in 0.1f64..4.0,
        share0 in 0.1f64..1.0,
        share1 in 0.1f64..1.0,
        queue_depth in 2usize..10,
    ) {
        use vit_serve::{TenantId, TenantSpec};

        let core = tiny_core();
        let arrivals: Vec<SimArrival> = raw
            .iter()
            .map(|(time, slack, t)| {
                SimArrival::new(*time, *slack).with_tenant(TenantId(*t))
            })
            .collect();
        let cfg = SimConfig::new(1, queue_depth, SchedulePolicy::DrtDynamic, 1.0)
            .with_tenants(vec![
                TenantSpec::new(TenantId(0)).with_weight(w0).with_queue_share(share0),
                TenantSpec::new(TenantId(1)).with_weight(w1).with_queue_share(share1),
                // Tenant 2 keeps the defaults: weight 1, unlimited share.
                TenantSpec::new(TenantId(2)),
            ]);
        let m = simulate(&core, &cfg, &arrivals);
        prop_assert_eq!(m.submitted, arrivals.len());
        prop_assert!(m.accounts_for_all_submissions());

        let mut seen = 0usize;
        for (id, t) in &m.per_tenant {
            let expected = arrivals.iter().filter(|a| a.tenant == *id).count();
            prop_assert_eq!(t.submitted, expected, "tenant {} submissions", id);
            seen += t.submitted;
            if t.submitted > 0 {
                prop_assert!(
                    (t.goodput + t.miss_rate + t.shed_rate - 1.0).abs() < 1e-9,
                    "tenant {} rates {} + {} + {} must partition 1",
                    id, t.goodput, t.miss_rate, t.shed_rate
                );
            }
            prop_assert!(t.shed_over_quota <= t.shed);
            prop_assert!(t.completed >= t.on_time);
        }
        prop_assert_eq!(seen, m.submitted, "tenant breakdown covers every request");
    }
}
