/root/repo/target/release/deps/repro-6ab5b6961eedbe04.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-6ab5b6961eedbe04: crates/bench/src/main.rs

crates/bench/src/main.rs:
