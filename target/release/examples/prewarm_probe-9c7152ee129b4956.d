/root/repo/target/release/examples/prewarm_probe-9c7152ee129b4956.d: crates/bench/../../examples/prewarm_probe.rs

/root/repo/target/release/examples/prewarm_probe-9c7152ee129b4956: crates/bench/../../examples/prewarm_probe.rs

crates/bench/../../examples/prewarm_probe.rs:
