//! Shadow-access checking: a per-element write/read/free tracker that
//! cross-validates, at replay time, the memory discipline a static
//! analyzer proved offline.
//!
//! The exec-safety pass in `vit-verify` proves three things about a
//! compiled plan *statically*: every parallel chunk writes a disjoint
//! slice of its record's output range, every input range still holds its
//! producer's value when it is read, and the arena free-list never
//! re-issues a range while a reader is pending. [`ShadowAccess`] is the
//! dynamic witness for those verdicts: `vit-plan`'s shadowed replay mode
//! drives one tracker element-for-element alongside the real arena and
//! reports every discipline violation as a typed [`ShadowViolation`].
//! A sound static verdict implies an empty violation list on every
//! schedule; the differential test suites hold that agreement at threads
//! {1, 2, 8}.
//!
//! The tracker is allocation-heavy (one `u32` per arena element) and
//! strictly debug tooling — nothing on the serving path constructs one.
//!
//! # Examples
//!
//! ```
//! use vit_tensor::shadow::{ShadowAccess, ShadowViolationKind};
//!
//! let mut shadow = ShadowAccess::new(8);
//! // Record 0 writes [0, 4) in two disjoint chunks: fine.
//! assert!(shadow.define(0, 2, 0).is_empty());
//! assert!(shadow.define(2, 2, 0).is_empty());
//! // Record 1 reads record 0's output: fine.
//! assert!(shadow.expect(0, 4, 0).is_empty());
//! // A second write of element 3 by the same tag is a double write.
//! let v = shadow.define(3, 1, 0);
//! assert_eq!(v[0].kind, ShadowViolationKind::DoubleWrite);
//! ```

use std::fmt;

/// Owner tag meaning "never written since the range was (re)issued".
const FREE: u32 = u32::MAX;

/// At most this many violations are recorded per [`ShadowAccess`]; element
/// granularity means one bad chunk boundary could otherwise report
/// thousands of identical findings.
const MAX_VIOLATIONS: usize = 32;

/// What kind of memory-discipline breach a shadow check observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShadowViolationKind {
    /// An element was written twice under the same tag — two parallel
    /// chunks of one record overlap.
    DoubleWrite,
    /// An element was written while still owned by a *different* live tag
    /// — a range was re-issued before its previous owner died.
    WriteOverLive,
    /// An element was read expecting one owner but found another — the
    /// buffer wiring and the arena contents disagree.
    ReadWrongOwner,
    /// An element was read after being freed (or before ever being
    /// written) — a reclamation ran while a reader was still pending, or
    /// a chunk decomposition left a gap.
    ReadUnwritten,
}

impl fmt::Display for ShadowViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ShadowViolationKind::DoubleWrite => "double write",
            ShadowViolationKind::WriteOverLive => "write over live range",
            ShadowViolationKind::ReadWrongOwner => "read of wrong owner",
            ShadowViolationKind::ReadUnwritten => "read of unwritten/freed element",
        })
    }
}

/// One element-level breach of the write/read/free discipline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShadowViolation {
    /// What went wrong.
    pub kind: ShadowViolationKind,
    /// Element index in the tracked buffer.
    pub element: usize,
    /// The tag performing the access.
    pub tag: u32,
    /// The owner tag found at the element (`None` when free/unwritten).
    pub found: Option<u32>,
}

impl fmt::Display for ShadowViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at element {} by tag {}",
            self.kind, self.element, self.tag
        )?;
        match self.found {
            Some(o) => write!(f, " (owned by tag {o})"),
            None => write!(f, " (element free)"),
        }
    }
}

/// A per-element ownership map over one linear buffer (e.g. a plan
/// arena): every element is either free or owned by the `u32` tag that
/// last wrote it.
///
/// The caller drives it with the schedule's events — [`define`] on every
/// chunk write, [`expect`] on every read, [`kill`] on every reclamation —
/// and collects violations at the end. See the module docs for the
/// discipline being checked.
///
/// [`define`]: ShadowAccess::define
/// [`expect`]: ShadowAccess::expect
/// [`kill`]: ShadowAccess::kill
#[derive(Debug)]
pub struct ShadowAccess {
    owner: Vec<u32>,
    violations: Vec<ShadowViolation>,
    truncated: bool,
}

impl ShadowAccess {
    /// A tracker for a buffer of `len` elements, all initially free.
    pub fn new(len: usize) -> Self {
        ShadowAccess {
            owner: vec![FREE; len],
            violations: Vec::new(),
            truncated: false,
        }
    }

    /// Number of tracked elements.
    pub fn len(&self) -> usize {
        self.owner.len()
    }

    /// Whether the tracker covers zero elements.
    pub fn is_empty(&self) -> bool {
        self.owner.is_empty()
    }

    fn push(&mut self, v: ShadowViolation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.truncated = true;
        }
    }

    /// Records a write of `[start, start + len)` by `tag`, flagging
    /// elements already owned by `tag` (overlapping chunks of one record)
    /// or by another live tag (premature range re-issue). Returns the
    /// violations found by *this* call.
    pub fn define(&mut self, start: usize, len: usize, tag: u32) -> Vec<ShadowViolation> {
        let before = self.violations.len();
        for e in start..(start + len).min(self.owner.len()) {
            match self.owner[e] {
                FREE => {}
                o if o == tag => self.push(ShadowViolation {
                    kind: ShadowViolationKind::DoubleWrite,
                    element: e,
                    tag,
                    found: Some(o),
                }),
                o => self.push(ShadowViolation {
                    kind: ShadowViolationKind::WriteOverLive,
                    element: e,
                    tag,
                    found: Some(o),
                }),
            }
            self.owner[e] = tag;
        }
        self.violations[before..].to_vec()
    }

    /// Records a read of `[start, start + len)` expecting every element to
    /// be owned by `tag`, flagging free elements (stale read after a
    /// reclamation, or a coverage gap) and elements owned by someone else
    /// (wiring/aliasing breach). Returns the violations found by *this*
    /// call.
    pub fn expect(&mut self, start: usize, len: usize, tag: u32) -> Vec<ShadowViolation> {
        let before = self.violations.len();
        for e in start..(start + len).min(self.owner.len()) {
            match self.owner[e] {
                o if o == tag => {}
                FREE => self.push(ShadowViolation {
                    kind: ShadowViolationKind::ReadUnwritten,
                    element: e,
                    tag,
                    found: None,
                }),
                o => self.push(ShadowViolation {
                    kind: ShadowViolationKind::ReadWrongOwner,
                    element: e,
                    tag,
                    found: Some(o),
                }),
            }
        }
        self.violations[before..].to_vec()
    }

    /// Marks `[start, start + len)` free again — the tracked schedule
    /// reclaimed the range. Subsequent reads of these elements (without a
    /// fresh [`ShadowAccess::define`]) are violations.
    pub fn kill(&mut self, start: usize, len: usize) {
        for e in start..(start + len).min(self.owner.len()) {
            self.owner[e] = FREE;
        }
    }

    /// All violations observed so far (capped; see
    /// [`ShadowAccess::is_truncated`]).
    pub fn violations(&self) -> &[ShadowViolation] {
        &self.violations
    }

    /// Whether violations beyond the reporting cap were dropped.
    pub fn is_truncated(&self) -> bool {
        self.truncated
    }

    /// Consumes the tracker, returning every recorded violation.
    pub fn into_violations(self) -> Vec<ShadowViolation> {
        self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_chunk_writes_and_wired_reads_are_clean() {
        let mut s = ShadowAccess::new(10);
        assert!(s.define(0, 3, 7).is_empty());
        assert!(s.define(3, 3, 7).is_empty());
        assert!(s.expect(0, 6, 7).is_empty());
        assert!(s.violations().is_empty());
    }

    #[test]
    fn overlapping_chunks_are_double_writes() {
        let mut s = ShadowAccess::new(10);
        s.define(0, 4, 1);
        let v = s.define(2, 4, 1);
        assert_eq!(v.len(), 2); // elements 2 and 3
        assert!(v.iter().all(|v| v.kind == ShadowViolationKind::DoubleWrite));
    }

    #[test]
    fn reissue_before_death_is_write_over_live() {
        let mut s = ShadowAccess::new(4);
        s.define(0, 4, 1);
        let v = s.define(1, 2, 2);
        assert_eq!(v.len(), 2);
        assert!(v
            .iter()
            .all(|v| v.kind == ShadowViolationKind::WriteOverLive));
        assert_eq!(v[0].found, Some(1));
    }

    #[test]
    fn read_after_kill_and_coverage_gap_are_flagged() {
        let mut s = ShadowAccess::new(6);
        s.define(0, 3, 1); // chunk decomposition left [3, 6) unwritten
        let v = s.expect(0, 6, 1);
        assert_eq!(v.len(), 3);
        assert!(v
            .iter()
            .all(|v| v.kind == ShadowViolationKind::ReadUnwritten));
        s.kill(0, 3);
        let v = s.expect(0, 1, 1);
        assert_eq!(v[0].kind, ShadowViolationKind::ReadUnwritten);
    }

    #[test]
    fn wrong_owner_read_is_flagged() {
        let mut s = ShadowAccess::new(4);
        s.define(0, 4, 1);
        s.kill(0, 4);
        s.define(0, 4, 2);
        let v = s.expect(0, 2, 1);
        assert_eq!(v.len(), 2);
        assert_eq!(v[0].kind, ShadowViolationKind::ReadWrongOwner);
        assert_eq!(v[0].found, Some(2));
    }

    #[test]
    fn violation_cap_truncates() {
        let mut s = ShadowAccess::new(100);
        s.define(0, 100, 1);
        s.define(0, 100, 1); // 100 double writes, cap is lower
        assert!(s.is_truncated());
        assert!(s.violations().len() <= 32);
    }

    #[test]
    fn display_is_informative() {
        let mut s = ShadowAccess::new(2);
        s.define(0, 1, 3);
        let v = s.define(0, 1, 3);
        let text = v[0].to_string();
        assert!(text.contains("double write"), "{text}");
        assert!(text.contains("element 0"), "{text}");
    }
}
