//! Criterion benchmarks of the accelerator simulator: per-graph mapping
//! throughput and design-space exploration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vit_accel::{design_space, simulate, AccelConfig, SimOptions};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerVariant, SwinConfig, SwinVariant,
};

fn bench_accelerator(c: &mut Criterion) {
    let mut g = c.benchmark_group("accelerator");
    let seg = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
    let swin = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
    let opts = SimOptions::default();

    g.bench_function("simulate_segformer_b2", |bench| {
        bench.iter(|| simulate(black_box(&seg), &AccelConfig::accelerator_star(), &opts))
    });
    g.bench_function("simulate_swin_tiny", |bench| {
        bench.iter(|| simulate(black_box(&swin), &AccelConfig::accelerator_star(), &opts))
    });
    g.bench_function("graph_build_segformer_b2", |bench| {
        bench.iter(|| {
            build_segformer(black_box(&SegFormerConfig::ade20k(SegFormerVariant::b2()))).unwrap()
        })
    });
    g.bench_function("design_space_10pt", |bench| {
        bench.iter(|| {
            design_space(
                black_box(&seg),
                &[(32, 32), (16, 16), (8, 8), (32, 16), (16, 8)],
                &[128, 1024],
                &[64],
                &opts,
            )
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_accelerator
}
criterion_main!(benches);
