//! Offline stand-in for `serde`.
//!
//! Provides the `Serialize` / `Deserialize` names the workspace imports:
//! the derive macros (inert, from the vendored `serde_derive`) and marker
//! traits with blanket implementations so `T: Serialize` bounds — should any
//! appear — are always satisfiable. No actual serialization framework lives
//! here; the one on-disk format in the workspace (the Pareto LUT) is
//! hand-rolled JSON in `vit-drt`.

#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

impl<T: ?Sized> Deserialize for T {}
