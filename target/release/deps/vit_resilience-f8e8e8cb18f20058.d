/root/repo/target/release/deps/vit_resilience-f8e8e8cb18f20058.d: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/release/deps/vit_resilience-f8e8e8cb18f20058: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

crates/resilience/src/lib.rs:
crates/resilience/src/accel_sweep.rs:
crates/resilience/src/accuracy.rs:
crates/resilience/src/config.rs:
crates/resilience/src/fidelity.rs:
crates/resilience/src/pareto.rs:
crates/resilience/src/sweep.rs:
