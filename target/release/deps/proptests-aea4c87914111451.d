/root/repo/target/release/deps/proptests-aea4c87914111451.d: crates/tensor/tests/proptests.rs

/root/repo/target/release/deps/proptests-aea4c87914111451: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
