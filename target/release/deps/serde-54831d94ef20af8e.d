/root/repo/target/release/deps/serde-54831d94ef20af8e.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-54831d94ef20af8e.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
