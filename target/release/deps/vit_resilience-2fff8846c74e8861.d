/root/repo/target/release/deps/vit_resilience-2fff8846c74e8861.d: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/release/deps/libvit_resilience-2fff8846c74e8861.rlib: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

/root/repo/target/release/deps/libvit_resilience-2fff8846c74e8861.rmeta: crates/resilience/src/lib.rs crates/resilience/src/accel_sweep.rs crates/resilience/src/accuracy.rs crates/resilience/src/config.rs crates/resilience/src/fidelity.rs crates/resilience/src/pareto.rs crates/resilience/src/sweep.rs

crates/resilience/src/lib.rs:
crates/resilience/src/accel_sweep.rs:
crates/resilience/src/accuracy.rs:
crates/resilience/src/config.rs:
crates/resilience/src/fidelity.rs:
crates/resilience/src/pareto.rs:
crates/resilience/src/sweep.rs:
