//! Cross-crate integration tests: models -> profiler -> resilience ->
//! accelerator, exercised together.

use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_graph::{Executor, OpClass};
use vit_models::{
    build_segformer, build_swin_upernet, ofa_family, SegFormerConfig, SegFormerDynamic,
    SegFormerVariant, SwinConfig, SwinVariant,
};
use vit_profiler::{GpuModel, Profile};
use vit_resilience::{
    pareto_front, segformer_sweep_space, sweep_segformer, ResourceKind, Workload,
};
use vit_tensor::Tensor;

#[test]
fn profiler_and_accelerator_agree_on_flops() {
    let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0())).unwrap();
    let profile = Profile::flops_only(&g);
    let report = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
    let accel_macs: u64 = report.layers.iter().map(|l| l.macs).sum();
    // The accelerator maps every MAC-bearing layer; its MAC total must be
    // close to the analytical FLOPs count (the profiler additionally counts
    // bias adds, normalization, activations and resizing, which run on the
    // PPU rather than the MAC array).
    let ratio = accel_macs as f64 / profile.total_flops() as f64;
    assert!((0.85..=1.01).contains(&ratio), "ratio {ratio}");
}

#[test]
fn pruning_reduces_all_three_cost_models_together() {
    let v = SegFormerVariant::b2();
    let gpu = GpuModel::titan_v();
    let opts = SimOptions::default();
    let full = build_segformer(&SegFormerConfig::ade20k(v)).unwrap();
    let pruned = build_segformer(&SegFormerConfig::ade20k(v).with_dynamic(
        SegFormerDynamic::with_depths_and_fuse(&v, [2, 3, 4, 3], 512),
    ))
    .unwrap();
    assert!(pruned.total_flops() < full.total_flops());
    assert!(gpu.total_time(&pruned) < gpu.total_time(&full));
    assert!(gpu.total_energy(&pruned) < gpu.total_energy(&full));
    let c_full = simulate(&full, &AccelConfig::accelerator_star(), &opts).total_cycles();
    let c_pruned = simulate(&pruned, &AccelConfig::accelerator_star(), &opts).total_cycles();
    assert!(c_pruned < c_full);
}

#[test]
fn pareto_front_spans_a_useful_range() {
    let v = SegFormerVariant::b2();
    let space = segformer_sweep_space(&v, 2, 8);
    let points = sweep_segformer(
        &v,
        Workload::SegFormerAde,
        (512, 512),
        150,
        &space,
        ResourceKind::GpuTime,
    );
    let front = pareto_front(&points);
    assert!(front.len() >= 10, "front has only {} points", front.len());
    let cheapest = front.first().unwrap();
    let fullest = front.last().unwrap();
    assert!((fullest.norm_resource - 1.0).abs() < 1e-9);
    assert!((fullest.norm_miou - 1.0).abs() < 1e-9);
    // The front reaches at least 35% resource savings.
    assert!(
        cheapest.norm_resource < 0.65,
        "cheapest {}",
        cheapest.norm_resource
    );
}

#[test]
fn swin_and_segformer_share_the_fuse_bottleneck_structure() {
    // The paper's central structural observation, across both families.
    let seg = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
    let swin = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
    for (g, fuse) in [
        (&seg, "decoder.conv_fuse"),
        (&swin, "decoder.fpn_bottleneck"),
    ] {
        let node = g.find(fuse).unwrap();
        let share = g.node(node).flops(g) as f64 / g.total_flops() as f64;
        assert!(share > 0.5, "{fuse} share {share}");
        assert!(g.flops_by_class(OpClass::Conv) > g.flops_by_class(OpClass::Attention));
    }
}

#[test]
fn executable_graphs_are_deterministic_across_executors() {
    let cfg = SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(64, 64);
    let g = build_segformer(&cfg).unwrap();
    let img = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 9);
    let a = Executor::new(5)
        .run(&g, std::slice::from_ref(&img))
        .unwrap();
    let b = Executor::new(5)
        .run(&g, std::slice::from_ref(&img))
        .unwrap();
    assert_eq!(a, b);
    // Different weight seeds give different outputs.
    let c = Executor::new(6).run(&g, &[img]).unwrap();
    assert_ne!(a, c);
}

#[test]
fn ofa_family_monotone_on_the_accelerator() {
    let opts = SimOptions::default();
    let mut prev = u64::MAX;
    for subnet in ofa_family() {
        let g = subnet.build_backbone((224, 224), 1).unwrap().graph;
        let cycles = simulate(&g, &AccelConfig::ofa2(), &opts).total_cycles();
        assert!(cycles < prev, "{}: {cycles} !< {prev}", subnet.label);
        prev = cycles;
    }
}

#[test]
fn one_accelerator_serves_all_three_model_families() {
    // accelerator* executes SegFormer, Swin and OFA ResNet-50 (§VI-C).
    let opts = SimOptions::default();
    let star = AccelConfig::accelerator_star();
    let seg =
        build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_image(128, 128))
            .unwrap();
    let swin =
        build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny()).with_image(128, 128)).unwrap();
    let ofa = ofa_family()[3].build_backbone((128, 128), 1).unwrap().graph;
    for g in [&seg, &swin, &ofa] {
        let r = simulate(g, &star, &opts);
        assert!(r.total_cycles() > 0);
        assert!(r.total_energy_j() > 0.0);
        for l in &r.layers {
            assert!(l.utilization <= 1.0 + 1e-9, "{}", l.name);
        }
    }
}
