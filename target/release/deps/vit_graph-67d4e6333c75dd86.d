/root/repo/target/release/deps/vit_graph-67d4e6333c75dd86.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs Cargo.toml

/root/repo/target/release/deps/libvit_graph-67d4e6333c75dd86.rmeta: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs Cargo.toml

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
