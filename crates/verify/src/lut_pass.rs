//! Pass 3 — LUT soundness.
//!
//! The Pareto LUT is the contract between offline sweep and online
//! serving: `lookup` assumes budget-sorted, strictly monotone, finite
//! rows, and every row's config must still materialize into a well-formed
//! graph. This pass re-checks all of it, reports *every* violation (not
//! just the first, unlike [`Lut::validate`]), and additionally checks the
//! serve policies the deployment is configured with.

use crate::diag::{Code, Diagnostic, Span};
use crate::graph_pass::verify_graph;
use crate::VerifyOptions;
use vit_drt::{EngineCore, EngineFamily, Lut, LutConfig};
use vit_models::{build_segformer, build_swin_upernet, SegFormerConfig, SwinConfig};
use vit_serve::{admissible, budget_for, SchedulePolicy};

/// Everything the LUT pass needs to know about the deployment the table
/// will serve: which model family materializes its configs, at what input
/// geometry, and which serve policies / budget floor it must satisfy.
#[derive(Debug, Clone)]
pub struct LutContext {
    /// Model family the LUT's configs belong to.
    pub family: EngineFamily,
    /// Segmentation classes of the deployment.
    pub num_classes: usize,
    /// Input image size the LUT was swept at.
    pub image: (usize, usize),
    /// The lowest per-request budget the deployment hands out, in LUT
    /// resource units (e.g. the tightest deadline's slack). `None` skips
    /// the admission-feasibility check.
    pub budget_floor: Option<f64>,
    /// The serve policies configured on top of this LUT.
    pub policies: Vec<SchedulePolicy>,
}

impl LutContext {
    /// A context with no policy/budget constraints — row and
    /// materialization checks only.
    pub fn bare(family: EngineFamily, num_classes: usize, image: (usize, usize)) -> Self {
        LutContext {
            family,
            num_classes,
            image,
            budget_floor: None,
            policies: Vec::new(),
        }
    }
}

/// Runs the LUT soundness pass.
pub fn verify_lut(lut: &Lut, ctx: &LutContext, opts: &VerifyOptions) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    check_rows(lut, opts, &mut diags);
    check_materialization(lut, ctx, &mut diags);
    check_policies(
        lut,
        ctx,
        diags
            .iter()
            .all(|d| d.code.severity() != crate::Severity::Error),
        &mut diags,
    );
    diags
}

/// `V023`, `V022`, `V021`, `V027`, `V024`: the row-level invariants
/// `Lut::lookup` relies on, each reported per offending row.
fn check_rows(lut: &Lut, opts: &VerifyOptions, diags: &mut Vec<Diagnostic>) {
    if lut.is_empty() {
        diags.push(
            Diagnostic::new(Code::EmptyLut, Span::Global, "LUT has no execution paths")
                .with_help("the sweep produced no buildable configurations"),
        );
        return;
    }
    for (i, e) in lut.entries().iter().enumerate() {
        for (field, v) in [
            ("resource", e.resource),
            ("norm_resource", e.norm_resource),
            ("norm_miou", e.norm_miou),
        ] {
            if !v.is_finite() {
                diags.push(Diagnostic::new(
                    Code::NonFinite,
                    Span::Entry { index: i },
                    format!("`{field}` is {v}"),
                ));
            } else if field != "resource" && (v <= 0.0 || v > 1.0 + 1e-9) {
                diags.push(Diagnostic::new(
                    Code::NormOutOfRange,
                    Span::Entry { index: i },
                    format!("`{field}` = {v} lies outside (0, 1]"),
                ));
            }
        }
        if e.resource.is_finite() && e.resource <= 0.0 {
            diags.push(Diagnostic::new(
                Code::NormOutOfRange,
                Span::Entry { index: i },
                format!("`resource` = {} is not positive", e.resource),
            ));
        }
    }
    for (i, w) in lut.entries().windows(2).enumerate() {
        if !w[0].resource.is_finite() || !w[1].resource.is_finite() {
            continue; // V022 already fired; ordering is meaningless.
        }
        if w[1].resource <= w[0].resource {
            diags.push(
                Diagnostic::new(
                    Code::ParetoNonMonotone,
                    Span::Entry { index: i + 1 },
                    format!(
                        "resource {} is not strictly above its predecessor's {}",
                        w[1].resource, w[0].resource
                    ),
                )
                .with_help("lookup's early-exit scan requires budget-sorted rows"),
            );
        } else if w[1].norm_miou <= w[0].norm_miou {
            diags.push(
                Diagnostic::new(
                    Code::ParetoNonMonotone,
                    Span::Entry { index: i + 1 },
                    format!(
                        "row is dominated: more expensive but norm_miou {} <= {}",
                        w[1].norm_miou, w[0].norm_miou
                    ),
                )
                .with_help("dominated rows should have been pruned by pareto_front"),
            );
        } else if w[1].resource / w[0].resource > opts.budget_gap_factor {
            diags.push(
                Diagnostic::new(
                    Code::BudgetGap,
                    Span::Entry { index: i + 1 },
                    format!(
                        "budget coverage gap: resource jumps {:.3} -> {:.3} (more than {}x)",
                        w[0].resource, w[1].resource, opts.budget_gap_factor
                    ),
                )
                .with_help(
                    "budgets inside the gap run the cheaper row and waste accuracy headroom",
                ),
            );
        }
    }
}

/// `V025`: every config must materialize into a graph of the context's
/// family that passes the graph well-formedness pass.
fn check_materialization(lut: &Lut, ctx: &LutContext, diags: &mut Vec<Diagnostic>) {
    for (i, e) in lut.entries().iter().enumerate() {
        let built = match (ctx.family, e.config) {
            (EngineFamily::SegFormer(variant), c) => match c.as_segformer() {
                Some(dynamic) => build_segformer(&SegFormerConfig {
                    variant,
                    num_classes: ctx.num_classes,
                    image: ctx.image,
                    batch: 1,
                    dynamic,
                })
                .map_err(|e| e.to_string()),
                None => Err(family_mismatch(&e.config, "SegFormer")),
            },
            (EngineFamily::Swin(variant), c) => match c.as_swin() {
                Some(dynamic) => build_swin_upernet(&SwinConfig {
                    variant,
                    num_classes: ctx.num_classes,
                    image: ctx.image,
                    batch: 1,
                    dynamic,
                })
                .map_err(|e| e.to_string()),
                None => Err(family_mismatch(&e.config, "Swin")),
            },
        };
        match built {
            Err(msg) => diags.push(
                Diagnostic::new(
                    Code::ConfigInvalid,
                    Span::Entry { index: i },
                    format!("config does not materialize: {msg}"),
                )
                .with_help("the engine would fail at serve time on first selection of this row"),
            ),
            Ok(graph) => {
                let nested = verify_graph(&graph);
                let errors = nested
                    .iter()
                    .filter(|d| d.severity == crate::Severity::Error)
                    .count();
                if errors > 0 {
                    diags.push(Diagnostic::new(
                        Code::ConfigInvalid,
                        Span::Entry { index: i },
                        format!(
                            "materialized graph fails well-formedness with {errors} error(s), first: {}",
                            nested[0].message
                        ),
                    ));
                }
            }
        }
    }
}

fn family_mismatch(config: &LutConfig, family: &str) -> String {
    format!("{config:?} does not belong to the {family} engine family")
}

/// `V026`: the configured serve policies must be satisfiable. A static
/// policy indexing past the table is silently clamped at serve time — a
/// misconfiguration this pass surfaces instead — and a budget floor below
/// the cheapest path means the tightest requests are always shed.
fn check_policies(lut: &Lut, ctx: &LutContext, rows_sound: bool, diags: &mut Vec<Diagnostic>) {
    if lut.is_empty() {
        return;
    }
    let cheapest = lut.entries()[0].resource;
    if let Some(floor) = ctx.budget_floor {
        if !admissible(floor, cheapest) {
            diags.push(
                Diagnostic::new(
                    Code::PolicyInfeasible,
                    Span::Global,
                    format!(
                        "budget floor {floor} is below the cheapest execution path ({cheapest})"
                    ),
                )
                .with_help("requests at the low end of the budget range can never be admitted"),
            );
        }
    }
    for p in &ctx.policies {
        if let SchedulePolicy::Static { entry_index } = *p {
            if entry_index != usize::MAX && entry_index >= lut.len() {
                diags.push(
                    Diagnostic::new(
                        Code::PolicyInfeasible,
                        Span::Policy {
                            policy: format!("{p:?}"),
                        },
                        format!(
                            "static entry index {entry_index} exceeds the {}-row table",
                            lut.len()
                        ),
                    )
                    .with_help("the server clamps it silently; point it at a real row"),
                );
            }
        }
    }
    // With sound rows, cross-check the budget each policy hands the engine
    // against an actual EngineCore over this LUT (the exact serve-time
    // code path). Skipped for unsound tables: the engine refuses them.
    if !rows_sound || lut.validate().is_err() {
        return;
    }
    let Ok(core) = EngineCore::new(ctx.family, ctx.num_classes, ctx.image, lut.clone()) else {
        return;
    };
    for p in &ctx.policies {
        let budget = budget_for(*p, &core, core.max_resource());
        let (entry, met) = core.select(budget);
        if !met {
            diags.push(Diagnostic::new(
                Code::PolicyInfeasible,
                Span::Policy {
                    policy: format!("{p:?}"),
                },
                format!("policy budget {budget} selects no row even with full slack"),
            ));
        } else if let SchedulePolicy::Static { entry_index } = *p {
            let idx = entry_index.min(lut.len() - 1);
            if entry != lut.entries()[idx] {
                diags.push(Diagnostic::new(
                    Code::PolicyInfeasible,
                    Span::Policy {
                        policy: format!("{p:?}"),
                    },
                    format!("static policy for row {idx} selects a different row"),
                ));
            }
        }
    }
}
