//! The Pareto look-up table at the heart of the DRT engine (block 'A' of
//! Figure 8): Pareto-optimal execution paths keyed by resource budget.

use serde::{Deserialize, Serialize};
use std::fmt;
use vit_models::{SegFormerDynamic, SwinDynamic};
use vit_resilience::{pareto_front, DynConfig, TradeoffPoint};

/// A serializable dynamic configuration (mirror of
/// [`vit_resilience::DynConfig`] with stable field names for the on-disk
/// LUT format).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LutConfig {
    /// SegFormer execution path.
    SegFormer {
        /// Encoder depths.
        depths: [usize; 4],
        /// `Conv2DFuse` input channels.
        fuse_in_channels: usize,
        /// `Conv2DFuse` output channels.
        fuse_out_channels: usize,
        /// `DecodeLinear0` input channels.
        decode_linear0_in: usize,
    },
    /// Swin execution path.
    Swin {
        /// Encoder depths.
        depths: [usize; 4],
        /// `fpn_bottleneck_Conv2D` input channels.
        bottleneck_in_channels: usize,
    },
}

impl From<DynConfig> for LutConfig {
    fn from(c: DynConfig) -> Self {
        match c {
            DynConfig::SegFormer(d) => LutConfig::SegFormer {
                depths: d.depths,
                fuse_in_channels: d.fuse_in_channels,
                fuse_out_channels: d.fuse_out_channels,
                decode_linear0_in: d.decode_linear0_in,
            },
            DynConfig::Swin(d) => LutConfig::Swin {
                depths: d.depths,
                bottleneck_in_channels: d.bottleneck_in_channels,
            },
        }
    }
}

impl LutConfig {
    /// The SegFormer configuration, if this is one.
    pub fn as_segformer(&self) -> Option<SegFormerDynamic> {
        match self {
            LutConfig::SegFormer {
                depths,
                fuse_in_channels,
                fuse_out_channels,
                decode_linear0_in,
            } => Some(SegFormerDynamic {
                depths: *depths,
                fuse_in_channels: *fuse_in_channels,
                fuse_out_channels: *fuse_out_channels,
                decode_linear0_in: *decode_linear0_in,
            }),
            LutConfig::Swin { .. } => None,
        }
    }

    /// The Swin configuration, if this is one.
    pub fn as_swin(&self) -> Option<SwinDynamic> {
        match self {
            LutConfig::Swin {
                depths,
                bottleneck_in_channels,
            } => Some(SwinDynamic {
                depths: *depths,
                bottleneck_in_channels: *bottleneck_in_channels,
            }),
            LutConfig::SegFormer { .. } => None,
        }
    }
}

/// One LUT row: an execution path with its precomputed cost and accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LutEntry {
    /// The execution path.
    pub config: LutConfig,
    /// Absolute resource cost (seconds, joules, or cycles, per the LUT's
    /// resource kind).
    pub resource: f64,
    /// Resource normalized to the full model.
    pub norm_resource: f64,
    /// Normalized mIoU estimate.
    pub norm_miou: f64,
}

/// Error returned when no execution path fits a budget.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetTooSmall {
    /// The requested budget.
    pub budget: f64,
    /// The cheapest available path's cost.
    pub cheapest: f64,
}

impl fmt::Display for BudgetTooSmall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "budget {} is below the cheapest execution path ({})",
            self.budget, self.cheapest
        )
    }
}

impl std::error::Error for BudgetTooSmall {}

/// The Pareto LUT: rows sorted by increasing resource, each strictly more
/// accurate than the previous (invariant established at construction).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Lut {
    /// Human-readable description (model + workload + resource kind).
    pub description: String,
    entries: Vec<LutEntry>,
}

impl Lut {
    /// Builds a LUT from sweep points: extracts the Pareto front and sorts
    /// it by resource.
    pub fn from_points(description: impl Into<String>, points: &[TradeoffPoint]) -> Self {
        let front = pareto_front(points);
        let entries = front
            .into_iter()
            .map(|p| LutEntry {
                config: p.config.into(),
                resource: p.resource,
                norm_resource: p.norm_resource,
                norm_miou: p.norm_miou,
            })
            .collect();
        Lut {
            description: description.into(),
            entries,
        }
    }

    /// The LUT rows, cheapest first.
    pub fn entries(&self) -> &[LutEntry] {
        &self.entries
    }

    /// The accuracy-maximizing execution path that fits `budget`
    /// (the dynamic inference algorithm, block 'D' of Figure 8).
    ///
    /// # Errors
    ///
    /// Returns [`BudgetTooSmall`] when even the cheapest path exceeds the
    /// budget (the caller may still choose to run it, accepting a deadline
    /// miss — the engine surfaces that decision).
    pub fn lookup(&self, budget: f64) -> Result<&LutEntry, BudgetTooSmall> {
        let mut best: Option<&LutEntry> = None;
        for e in &self.entries {
            if e.resource <= budget {
                best = Some(e);
            } else {
                break;
            }
        }
        best.ok_or_else(|| BudgetTooSmall {
            budget,
            cheapest: self.entries.first().map_or(f64::INFINITY, |e| e.resource),
        })
    }

    /// Serializes the LUT to JSON (the precomputed artifact the runtime
    /// engine loads).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("lut is serializable")
    }

    /// Loads a LUT from JSON.
    ///
    /// # Errors
    ///
    /// Returns the underlying `serde_json` error for malformed input.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }

    /// Number of Pareto rows retained.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the LUT has no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Reduces the LUT to at most `n` rows, keeping the endpoints and the
    /// most evenly spread interior rows (the granularity ablation).
    pub fn downsample(&self, n: usize) -> Lut {
        if n == 0 || self.entries.len() <= n {
            return self.clone();
        }
        let mut entries = Vec::with_capacity(n);
        for i in 0..n {
            let idx = i * (self.entries.len() - 1) / (n - 1).max(1);
            entries.push(self.entries[idx].clone());
        }
        entries.dedup_by(|a, b| a.resource == b.resource);
        Lut {
            description: self.description.clone(),
            entries,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_models::SegFormerVariant;

    fn point(r: f64, a: f64) -> TradeoffPoint {
        TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(SegFormerDynamic::with_depths_and_fuse(
                &SegFormerVariant::b2(),
                [2, 3, 5, 3],
                ((r * 3072.0) as usize / 4).max(1) * 4,
            )),
            resource: r,
            norm_resource: r,
            norm_miou: a,
        }
    }

    fn lut() -> Lut {
        Lut::from_points(
            "test",
            &[
                point(1.0, 1.0),
                point(0.8, 0.95),
                point(0.9, 0.5), // dominated
                point(0.6, 0.8),
                point(0.4, 0.6),
            ],
        )
    }

    #[test]
    fn lut_keeps_only_pareto_rows_sorted() {
        let l = lut();
        assert_eq!(l.len(), 4);
        for w in l.entries().windows(2) {
            assert!(w[0].resource < w[1].resource);
            assert!(w[0].norm_miou < w[1].norm_miou);
        }
    }

    #[test]
    fn lookup_maximizes_accuracy_within_budget() {
        let l = lut();
        assert_eq!(l.lookup(1.5).unwrap().norm_miou, 1.0);
        assert_eq!(l.lookup(0.85).unwrap().norm_miou, 0.95);
        assert_eq!(l.lookup(0.65).unwrap().norm_miou, 0.8);
        assert_eq!(l.lookup(0.4).unwrap().norm_miou, 0.6);
    }

    #[test]
    fn lookup_rejects_impossible_budget() {
        let l = lut();
        let err = l.lookup(0.1).unwrap_err();
        assert_eq!(err.cheapest, 0.4);
        assert!(err.to_string().contains("0.1"));
    }

    #[test]
    fn json_round_trip() {
        let l = lut();
        let s = l.to_json();
        let back = Lut::from_json(&s).unwrap();
        assert_eq!(l, back);
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let l = lut();
        let d = l.downsample(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d.entries()[0].resource, l.entries()[0].resource);
        assert_eq!(
            d.entries()[1].resource,
            l.entries()[l.len() - 1].resource
        );
        // Downsampling more rows than exist is identity.
        assert_eq!(l.downsample(100), l);
    }

    #[test]
    fn config_round_trips_through_lutconfig() {
        let d = SegFormerDynamic::with_depths_and_fuse(&SegFormerVariant::b2(), [2, 3, 5, 3], 1024);
        let lc: LutConfig = DynConfig::SegFormer(d).into();
        assert_eq!(lc.as_segformer().unwrap(), d);
        assert!(lc.as_swin().is_none());
    }
}
