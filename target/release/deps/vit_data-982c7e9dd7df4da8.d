/root/repo/target/release/deps/vit_data-982c7e9dd7df4da8.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

/root/repo/target/release/deps/vit_data-982c7e9dd7df4da8: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
