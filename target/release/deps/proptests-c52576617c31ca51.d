/root/repo/target/release/deps/proptests-c52576617c31ca51.d: crates/resilience/tests/proptests.rs

/root/repo/target/release/deps/proptests-c52576617c31ca51: crates/resilience/tests/proptests.rs

crates/resilience/tests/proptests.rs:
