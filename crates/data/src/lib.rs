//! # vit-data
//!
//! Synthetic dataset generators and accuracy metrics for the DRT-ViT
//! reproduction.
//!
//! Real ADE20K / Cityscapes / COCO images are not available in this
//! environment; these generators produce seeded synthetic scenes with the
//! same geometry (image size, class count) and enough spatial structure
//! (smooth class regions with correlated appearance) that segmentation
//! outputs vary meaningfully across inputs. The [`metrics`] module
//! implements mean intersection-over-union exactly as the paper defines it.

#![warn(missing_docs)]

pub mod metrics;
pub mod scene;

pub use metrics::{confusion_matrix, mean_iou, pixel_accuracy};
pub use scene::{Dataset, SceneGenerator, SceneSample};
