/root/repo/target/release/deps/vit_models-fa10fe9195832260.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs Cargo.toml

/root/repo/target/release/deps/libvit_models-fa10fe9195832260.rmeta: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs Cargo.toml

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
