/root/repo/target/release/deps/vit_serve-35a294514793cdde.d: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

/root/repo/target/release/deps/libvit_serve-35a294514793cdde.rlib: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

/root/repo/target/release/deps/libvit_serve-35a294514793cdde.rmeta: crates/serve/src/lib.rs crates/serve/src/metrics.rs crates/serve/src/policy.rs crates/serve/src/queue.rs crates/serve/src/request.rs crates/serve/src/server.rs crates/serve/src/sim.rs

crates/serve/src/lib.rs:
crates/serve/src/metrics.rs:
crates/serve/src/policy.rs:
crates/serve/src/queue.rs:
crates/serve/src/request.rs:
crates/serve/src/server.rs:
crates/serve/src/sim.rs:
