/root/repo/target/release/deps/proptests-327c4b6608ce4e8c.d: crates/accel/tests/proptests.rs

/root/repo/target/release/deps/proptests-327c4b6608ce4e8c: crates/accel/tests/proptests.rs

crates/accel/tests/proptests.rs:
