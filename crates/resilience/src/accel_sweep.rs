//! Accelerator-backed sweeps: evaluate execution-path configurations in
//! accelerator cycles or accelerator energy instead of GPU time
//! (Figures 12/13 use exactly these resources as dynamic constraints).

use crate::accuracy::AccuracyModel;
use crate::config::Workload;
use crate::sweep::{DynConfig, TradeoffPoint};
use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerDynamic, SegFormerVariant,
    SwinConfig, SwinDynamic, SwinVariant,
};

/// Which accelerator resource a sweep measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelResource {
    /// End-to-end cycles (Figure 12's x-axis).
    Cycles,
    /// Total energy (Figure 13's x-axis).
    Energy,
}

/// Sweeps SegFormer configurations on an accelerator.
///
/// Like [`crate::sweep_segformer`], but the resource is measured by
/// simulating each pruned graph on `accel`.
pub fn sweep_segformer_on_accelerator(
    variant: &SegFormerVariant,
    workload: Workload,
    image: (usize, usize),
    num_classes: usize,
    space: &[SegFormerDynamic],
    accel: &AccelConfig,
    resource: AccelResource,
) -> Vec<TradeoffPoint> {
    let accuracy = AccuracyModel::for_workload(workload);
    let opts = SimOptions::default();
    let measure = |d: &SegFormerDynamic| -> Option<f64> {
        let cfg = SegFormerConfig {
            variant: *variant,
            num_classes,
            image,
            batch: 1,
            dynamic: *d,
        };
        let g = build_segformer(&cfg).ok()?;
        let r = simulate(&g, accel, &opts);
        Some(match resource {
            AccelResource::Cycles => r.total_cycles() as f64,
            AccelResource::Energy => r.total_energy_j(),
        })
    };
    let full = measure(&SegFormerDynamic::full(variant)).expect("full model must build");
    space
        .iter()
        .filter_map(|d| {
            let r = measure(d)?;
            Some(TradeoffPoint {
                label: String::new(),
                config: DynConfig::SegFormer(*d),
                resource: r,
                norm_resource: r / full,
                norm_miou: accuracy.norm_miou_segformer(d, variant),
            })
        })
        .collect()
}

/// Sweeps Swin configurations on an accelerator.
pub fn sweep_swin_on_accelerator(
    variant: &SwinVariant,
    workload: Workload,
    image: (usize, usize),
    num_classes: usize,
    space: &[SwinDynamic],
    accel: &AccelConfig,
    resource: AccelResource,
) -> Vec<TradeoffPoint> {
    let accuracy = AccuracyModel::for_workload(workload);
    let opts = SimOptions::default();
    let measure = |d: &SwinDynamic| -> Option<f64> {
        let cfg = SwinConfig {
            variant: *variant,
            num_classes,
            image,
            batch: 1,
            dynamic: *d,
        };
        let g = build_swin_upernet(&cfg).ok()?;
        let r = simulate(&g, accel, &opts);
        Some(match resource {
            AccelResource::Cycles => r.total_cycles() as f64,
            AccelResource::Energy => r.total_energy_j(),
        })
    };
    let full = measure(&SwinDynamic::full(variant)).expect("full model must build");
    space
        .iter()
        .filter_map(|d| {
            let r = measure(d)?;
            Some(TradeoffPoint {
                label: String::new(),
                config: DynConfig::Swin(*d),
                resource: r,
                norm_resource: r / full,
                norm_miou: accuracy.norm_miou_swin(d, variant),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::table2_ade;
    use crate::pareto::pareto_front;

    #[test]
    fn accelerator_sweep_improves_on_gpu_tradeoff_for_point_b() {
        // Paper §VI-A: "with a 2% drop in accuracy, accelerator_A enables
        // saving 20% instead of 11% of execution time" — the accelerator's
        // time tracks FLOPs more closely than the GPU's.
        let v = SegFormerVariant::b2();
        let space: Vec<SegFormerDynamic> = table2_ade()
            .iter()
            .map(|p| p.to_segformer_dynamic(&v))
            .collect();
        let accel_points = sweep_segformer_on_accelerator(
            &v,
            Workload::SegFormerAde,
            (512, 512),
            150,
            &space,
            &AccelConfig::accelerator_a(),
            AccelResource::Cycles,
        );
        let gpu_points = crate::sweep::sweep_segformer(
            &v,
            Workload::SegFormerAde,
            (512, 512),
            150,
            &space,
            crate::sweep::ResourceKind::GpuTime,
        );
        // Point B (index 1): accelerator saving must exceed GPU saving.
        let accel_saving = 1.0 - accel_points[1].norm_resource;
        let gpu_saving = 1.0 - gpu_points[1].norm_resource;
        assert!(
            accel_saving > gpu_saving,
            "accel {accel_saving:.2} vs gpu {gpu_saving:.2}"
        );
        assert!(accel_saving > 0.15, "accel saving {accel_saving:.2}");
    }

    #[test]
    fn cycles_and_energy_sweeps_are_both_monotone_for_channel_cuts() {
        let v = SegFormerVariant::b2();
        let space: Vec<SegFormerDynamic> = [3072usize, 2048, 1024, 512]
            .iter()
            .map(|&ch| SegFormerDynamic::with_depths_and_fuse(&v, v.depths, ch))
            .collect();
        for resource in [AccelResource::Cycles, AccelResource::Energy] {
            let pts = sweep_segformer_on_accelerator(
                &v,
                Workload::SegFormerAde,
                (512, 512),
                150,
                &space,
                &AccelConfig::accelerator_star(),
                resource,
            );
            for w in pts.windows(2) {
                assert!(
                    w[1].norm_resource < w[0].norm_resource,
                    "{resource:?} not monotone"
                );
            }
        }
    }

    #[test]
    fn accelerator_front_is_nonempty_and_normalized() {
        let v = SwinVariant::tiny();
        let space = vec![
            SwinDynamic::full(&v),
            SwinDynamic {
                depths: v.depths,
                bottleneck_in_channels: 1024,
            },
        ];
        let pts = sweep_swin_on_accelerator(
            &v,
            Workload::SwinTinyAde,
            (128, 128),
            150,
            &space,
            &AccelConfig::accelerator_star(),
            AccelResource::Cycles,
        );
        let front = pareto_front(&pts);
        assert!(!front.is_empty());
        assert!((pts[0].norm_resource - 1.0).abs() < 1e-12);
    }
}
