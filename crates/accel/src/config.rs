//! Accelerator architecture configuration, technology constants, and the
//! area model (TSMC 5nm class, INT8 datapath — §V of the paper).

use serde::{Deserialize, Serialize};

/// Architecture parameters of one accelerator instance (Figure 9).
///
/// The paper holds the total parallel-MAC count at 16384 for every design
/// point and trades it between vector width (`c0`), vector MACs per PE
/// (`k0`), and PE count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccelConfig {
    /// Vector MACs per PE (one per output channel in flight).
    pub k0: usize,
    /// Multiplier lanes per vector MAC (input-channel parallelism).
    pub c0: usize,
    /// PEs along one side of the square PE array.
    pub pe_rows: usize,
    /// PEs along the other side.
    pub pe_cols: usize,
    /// Weight memory per PE, kilobytes.
    pub weight_mem_kb: usize,
    /// Activation memory per PE, kilobytes.
    pub act_mem_kb: usize,
    /// Synthesized clock, GHz (1.25 in the paper).
    pub clock_ghz: f64,
}

impl AccelConfig {
    /// `accelerator_A`: the latency/energy-optimal design for the full
    /// SegFormer-B2 (K0=32, C0=32, WM=1024 kB, AM=64 kB).
    pub fn accelerator_a() -> Self {
        AccelConfig {
            k0: 32,
            c0: 32,
            pe_rows: 4,
            pe_cols: 4,
            weight_mem_kb: 1024,
            act_mem_kb: 64,
            clock_ghz: 1.25,
        }
    }

    /// `accelerator*`: same compute, 4.3x smaller PE array (WM=128 kB).
    pub fn accelerator_star() -> Self {
        AccelConfig {
            weight_mem_kb: 128,
            ..Self::accelerator_a()
        }
    }

    /// `accelerator_OFA1` (Table IV).
    pub fn ofa1() -> Self {
        Self::accelerator_a()
    }

    /// `accelerator_OFA2` (Table IV) — identical to `accelerator*`.
    pub fn ofa2() -> Self {
        Self::accelerator_star()
    }

    /// `accelerator_OFA3` (Table IV): WM=64 kB, AM=32 kB.
    pub fn ofa3() -> Self {
        AccelConfig {
            weight_mem_kb: 64,
            act_mem_kb: 32,
            ..Self::accelerator_a()
        }
    }

    /// A design point with different vectorization but the same 16384
    /// parallel MACs (e.g. `K0=C0=16` with an 8x8 array).
    ///
    /// Returns `None` when `k0 * c0` does not divide 16384 into a square
    /// PE array.
    pub fn with_vectorization(k0: usize, c0: usize, wm_kb: usize, am_kb: usize) -> Option<Self> {
        if k0 == 0 || c0 == 0 {
            return None;
        }
        let pes = TOTAL_PARALLEL_MACS / (k0 * c0);
        if pes * k0 * c0 != TOTAL_PARALLEL_MACS {
            return None;
        }
        let side = (pes as f64).sqrt() as usize;
        let (rows, cols) = if side * side == pes {
            (side, side)
        } else if side * (side + 1) == pes {
            (side, side + 1)
        } else {
            (1, pes)
        };
        Some(AccelConfig {
            k0,
            c0,
            pe_rows: rows,
            pe_cols: cols,
            weight_mem_kb: wm_kb,
            act_mem_kb: am_kb,
            clock_ghz: 1.25,
        })
    }

    /// Number of PEs in the array.
    pub fn num_pes(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Parallel MACs per cycle at full utilization.
    pub fn parallel_macs(&self) -> usize {
        self.num_pes() * self.k0 * self.c0
    }

    /// PE-array area in mm^2 (5nm), calibrated to Table IV: the SRAM
    /// (weight + activation memories) dominates; compute + register files +
    /// control form a fixed base for the constant 16384-MAC datapath.
    pub fn pe_array_area_mm2(&self) -> f64 {
        let sram_kb = (self.weight_mem_kb + self.act_mem_kb) * self.num_pes();
        // Calibration: OFA1 (17408 kB) = 8.33 mm^2, OFA2 (3072 kB) =
        // 2.26 mm^2, OFA3 (1536 kB) = 1.66 mm^2.
        MAC_ARRAY_BASE_MM2 + SRAM_MM2_PER_KB * sram_kb as f64
    }
}

impl Default for AccelConfig {
    /// `accelerator*`, the paper's recommended design.
    fn default() -> Self {
        Self::accelerator_star()
    }
}

/// The constant total parallel-MAC budget of every design point.
pub const TOTAL_PARALLEL_MACS: usize = 16384;

/// Fixed area of the 16384-MAC INT8 datapath + register files + control.
pub const MAC_ARRAY_BASE_MM2: f64 = 1.0;

/// SRAM area per kilobyte (banked, with overheads) in 5nm.
pub const SRAM_MM2_PER_KB: f64 = 4.2e-4;

/// Technology energy constants (5nm-class, INT8), joules per event.
///
/// Absolute values are representative of published 5nm accelerators
/// (e.g. the MAGNet-derived designs the paper builds on); every figure in
/// the evaluation uses *normalized* energy, which depends only on the
/// ratios between these constants.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TechEnergy {
    /// One INT8 MAC.
    pub mac_j: f64,
    /// One byte read/written in a vector-MAC register file.
    pub rf_byte_j: f64,
    /// One byte from a 128 kB PE SRAM (scaled by sqrt(capacity) at other
    /// sizes — longer bitlines and deeper banking cost energy).
    pub sram_byte_128kb_j: f64,
    /// One byte through the global buffer.
    pub gb_byte_j: f64,
    /// One byte from DRAM.
    pub dram_byte_j: f64,
    /// Per-PE per-active-cycle control/instruction overhead.
    pub pe_ctrl_cycle_j: f64,
    /// One byte moved between PEs (cross-PE reduction).
    pub cross_pe_byte_j: f64,
}

impl Default for TechEnergy {
    fn default() -> Self {
        TechEnergy {
            mac_j: 25e-15,
            rf_byte_j: 10e-15,
            sram_byte_128kb_j: 120e-15,
            gb_byte_j: 300e-15,
            dram_byte_j: 8e-12,
            pe_ctrl_cycle_j: 6.0e-12,
            cross_pe_byte_j: 150e-15,
        }
    }
}

impl TechEnergy {
    /// SRAM access energy per byte for a memory of `kb` kilobytes.
    pub fn sram_byte_j(&self, kb: usize) -> f64 {
        self.sram_byte_128kb_j * (kb.max(1) as f64 / 128.0).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_design_points_hold_the_mac_budget() {
        for cfg in [
            AccelConfig::accelerator_a(),
            AccelConfig::accelerator_star(),
            AccelConfig::ofa3(),
            AccelConfig::with_vectorization(16, 16, 128, 64).unwrap(),
            AccelConfig::with_vectorization(8, 8, 128, 64).unwrap(),
            AccelConfig::with_vectorization(32, 16, 128, 64).unwrap(),
        ] {
            assert_eq!(cfg.parallel_macs(), TOTAL_PARALLEL_MACS, "{cfg:?}");
        }
    }

    #[test]
    fn area_matches_table4() {
        // Table IV: OFA1 = 8.33, OFA2 = 2.26, OFA3 = 1.66 mm^2.
        let a1 = AccelConfig::ofa1().pe_array_area_mm2();
        let a2 = AccelConfig::ofa2().pe_array_area_mm2();
        let a3 = AccelConfig::ofa3().pe_array_area_mm2();
        assert!((a1 - 8.33).abs() / 8.33 < 0.05, "OFA1 {a1:.2}");
        assert!((a2 - 2.26).abs() / 2.26 < 0.05, "OFA2 {a2:.2}");
        assert!((a3 - 1.66).abs() / 1.66 < 0.05, "OFA3 {a3:.2}");
    }

    #[test]
    fn star_is_about_4x_smaller_than_a() {
        let ratio = AccelConfig::accelerator_a().pe_array_area_mm2()
            / AccelConfig::accelerator_star().pe_array_area_mm2();
        // Paper: 4.3x smaller (Table IV areas give 3.7x; the paper quotes
        // 4.3x in the text — we accept the range).
        assert!(ratio > 3.3 && ratio < 4.6, "ratio {ratio:.2}");
    }

    #[test]
    fn invalid_vectorization_rejected() {
        assert!(AccelConfig::with_vectorization(0, 32, 128, 64).is_none());
        assert!(AccelConfig::with_vectorization(48, 32, 128, 64).is_none());
    }

    #[test]
    fn sram_energy_grows_with_capacity() {
        let t = TechEnergy::default();
        assert!(t.sram_byte_j(1024) > t.sram_byte_j(128));
        assert!((t.sram_byte_j(128) - t.sram_byte_128kb_j).abs() < 1e-20);
    }
}
