//! The `repro chaos` exit-code contract, held against the real binary:
//! exit code zero when every invariant holds (with `--json` writing a
//! parseable `BENCH_chaos.json` whose `violations` array is empty), exit
//! code 2 on unknown flags before any work starts, and the same
//! [`exit_code`] mapping `repro verify` uses for the violation count.

use std::process::Command;
use vit_bench::experiments::verify::exit_code;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

/// A scratch directory so the artifact never lands in the source tree.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("chaos-contract-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn quick_run_exits_zero_and_writes_a_clean_artifact() {
    let dir = scratch_dir("quick");
    let out = repro()
        .args(["chaos", "--quick", "--json"])
        .current_dir(&dir)
        .output()
        .expect("repro chaos runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "clean chaos run must exit zero:\n{stdout}"
    );
    assert!(
        stdout.contains("degraded-retry") && stdout.contains("fail-fast"),
        "table names the compared policies:\n{stdout}"
    );

    let text = std::fs::read_to_string(dir.join("BENCH_chaos.json")).expect("artifact written");
    let doc = vit_drt::json::parse(&text).expect("artifact is valid JSON");
    assert_eq!(doc.get("benchmark").and_then(|b| b.as_str()), Some("chaos"));
    assert_eq!(
        doc.get("violations")
            .and_then(|v| v.as_arr())
            .map(<[_]>::len),
        Some(0),
        "clean run records no violations"
    );
    let points = doc.get("points").and_then(|p| p.as_arr()).unwrap();
    assert!(!points.is_empty());
    for point in points {
        let policies = point.get("policies").and_then(|p| p.as_arr()).unwrap();
        assert_eq!(policies.len(), 3, "three policies per fault rate");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn unknown_flag_exits_two_without_running() {
    let dir = scratch_dir("flag");
    let out = repro()
        .args(["chaos", "--bogus"])
        .current_dir(&dir)
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "bad flags are a usage error");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown chaos flag `--bogus`"),
        "names the offending flag:\n{stderr}"
    );
    assert!(
        !dir.join("BENCH_chaos.json").exists(),
        "usage errors must not write artifacts"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_lists_the_chaos_subcommand() {
    let out = repro().output().expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("chaos"), "usage mentions chaos:\n{stderr}");
    assert!(stderr.contains("--quick"), "usage documents --quick");
}

/// `repro chaos` maps its violation count through the same helper as
/// `repro verify`: any violation is an error-severity failure, never a
/// deniable warning.
#[test]
fn violation_count_maps_to_the_shared_exit_code() {
    assert_eq!(exit_code(0, 0, false), 0);
    for violations in [1, 2, 17] {
        assert_eq!(exit_code(violations, 0, false), 1);
        assert_eq!(exit_code(violations, 0, true), 1);
    }
}
