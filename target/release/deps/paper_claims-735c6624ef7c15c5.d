/root/repo/target/release/deps/paper_claims-735c6624ef7c15c5.d: crates/core/../../tests/paper_claims.rs

/root/repo/target/release/deps/paper_claims-735c6624ef7c15c5: crates/core/../../tests/paper_claims.rs

crates/core/../../tests/paper_claims.rs:
