//! Pass 5 — plan equivalence.
//!
//! A compiled [`ExecPlan`] replaces the interpreter for serving, so it
//! must be provably the *same program* as the graph it was lowered from:
//! identical cost totals (`V040`), every non-fused graph node covered by
//! exactly one record and every fused node folded into exactly one
//! epilogue (`V041`), a sound arena layout in which simultaneously live
//! ranges never overlap (`V042`), and record shapes/buffer wiring that
//! match the graph's edges (`V043`).

use crate::diag::{Code, Diagnostic, Span};
use std::collections::HashMap;
use vit_graph::Graph;
use vit_plan::ExecPlan;
use vit_profiler::node_io_bytes;

/// Runs the plan-equivalence pass: checks `plan` against the `graph` it
/// was compiled from.
pub fn verify_plan(graph: &Graph, plan: &ExecPlan) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    // Coverage: every graph node is owned by exactly one record, either
    // as the record itself or fused into its epilogue.
    let mut covering: HashMap<&str, usize> = HashMap::new();
    for (ri, rec) in plan.records().iter().enumerate() {
        let names = std::iter::once(rec.name.as_str()).chain(rec.fused.iter().map(String::as_str));
        for name in names {
            if graph.find(name).is_none() {
                diags.push(Diagnostic::new(
                    Code::PlanCoverage,
                    Span::Global,
                    format!("record {ri} covers `{name}`, which the graph does not contain"),
                ));
            }
            if let Some(prev) = covering.insert(name, ri) {
                diags.push(Diagnostic::new(
                    Code::PlanCoverage,
                    Span::Global,
                    format!("`{name}` is covered by records {prev} and {ri}"),
                ));
            }
        }
    }
    for (id, node) in graph.iter() {
        if !covering.contains_key(node.name.as_str()) {
            diags.push(Diagnostic::new(
                Code::PlanCoverage,
                Span::Node {
                    index: id.index(),
                    name: node.name.clone(),
                },
                "graph node is covered by no plan record".to_string(),
            ));
        }
    }
    if !diags.is_empty() {
        // Wiring and liveness below navigate graph edges through the
        // coverage map; with coverage broken they would only re-report
        // the same root cause.
        return diags;
    }

    // Cost conservation: lowering must neither lose nor invent work.
    // Fused nodes keep their interpreter-convention accounting inside the
    // owning record, so these are exact integer equalities.
    let graph_bytes: u64 = graph.iter().map(|(_, n)| node_io_bytes(graph, n)).sum();
    for (what, plan_total, graph_total) in [
        ("flops", plan.total_flops(), graph.total_flops()),
        ("params", plan.total_params(), graph.total_params()),
        ("bytes", plan.total_bytes(), graph_bytes),
    ] {
        if plan_total != graph_total {
            diags.push(
                Diagnostic::new(
                    Code::PlanCostMismatch,
                    Span::Global,
                    format!("plan totals {plan_total} {what}, graph totals {graph_total}"),
                )
                .with_help("a fused node's costs were dropped or double-counted"),
            );
        }
    }

    // Shapes and buffer wiring: each record's output range must be the
    // node's stored shape, and each input range must be the producing
    // record's output range (fused nodes alias their producer's range).
    for rec in plan.records() {
        let id = graph.find(&rec.name).expect("coverage checked");
        let node = graph.node(id);
        let span = || Span::Node {
            index: id.index(),
            name: node.name.clone(),
        };
        if rec.out_shape != node.shape {
            diags.push(Diagnostic::new(
                Code::PlanShapeMismatch,
                span(),
                format!(
                    "record output shape {:?} vs graph shape {:?}",
                    rec.out_shape, node.shape
                ),
            ));
        }
        let numel: usize = rec.out_shape.iter().product();
        if rec.out.len != numel {
            diags.push(Diagnostic::new(
                Code::PlanShapeMismatch,
                span(),
                format!(
                    "output range holds {} elements for a {numel}-element shape",
                    rec.out.len
                ),
            ));
        }
        if rec.out.end() > plan.arena_len() {
            diags.push(Diagnostic::new(
                Code::PlanArenaOverlap,
                span(),
                format!(
                    "output range [{}, {}) exceeds the {}-element arena",
                    rec.out.offset,
                    rec.out.end(),
                    plan.arena_len()
                ),
            ));
        }
        if rec.inputs.len() != node.inputs.len() || rec.in_shapes.len() != node.inputs.len() {
            diags.push(Diagnostic::new(
                Code::PlanShapeMismatch,
                span(),
                format!(
                    "record has {} input ranges / {} input shapes for a {}-input node",
                    rec.inputs.len(),
                    rec.in_shapes.len(),
                    node.inputs.len()
                ),
            ));
            continue;
        }
        for (k, producer_id) in node.inputs.iter().enumerate() {
            let producer = graph.node(*producer_id);
            let producing = plan.records()[covering[producer.name.as_str()]].out;
            if rec.inputs[k] != producing {
                diags.push(Diagnostic::new(
                    Code::PlanShapeMismatch,
                    span(),
                    format!(
                        "input {k} reads [{}, {}) but `{}` is produced at [{}, {})",
                        rec.inputs[k].offset,
                        rec.inputs[k].end(),
                        producer.name,
                        producing.offset,
                        producing.end()
                    ),
                ));
            }
            if rec.in_shapes[k] != producer.shape {
                diags.push(Diagnostic::new(
                    Code::PlanShapeMismatch,
                    span(),
                    format!(
                        "input {k} shape {:?} vs `{}` shape {:?}",
                        rec.in_shapes[k], producer.name, producer.shape
                    ),
                ));
            }
        }
    }

    // Liveness soundness: recompute each record's live interval from the
    // plan itself — created at its own index, read until its last
    // consumer (the plan output until the end) — and demand that ranges
    // with intersecting intervals never share arena elements.
    let records = plan.records();
    let mut last_use: Vec<usize> = (0..records.len()).collect();
    for (ri, rec) in records.iter().enumerate() {
        let id = graph.find(&rec.name).expect("coverage checked");
        for producer_id in &graph.node(id).inputs {
            let p = covering[graph.node(*producer_id).name.as_str()];
            last_use[p] = last_use[p].max(ri);
        }
    }
    if let Some(out_id) = graph.output() {
        let out_rec = covering[graph.node(out_id).name.as_str()];
        last_use[out_rec] = records.len().saturating_sub(1);
    }
    for i in 0..records.len() {
        for j in (i + 1)..records.len() {
            // Records are in execution order, so the intervals [i,
            // last_use[i]] and [j, last_use[j]] intersect iff range j is
            // created before range i's last read.
            if j <= last_use[i] && records[i].out.overlaps(&records[j].out) {
                diags.push(Diagnostic::new(
                    Code::PlanArenaOverlap,
                    Span::Global,
                    format!(
                        "`{}` (record {i}, live through {}) and `{}` (record {j}) \
                         share arena elements [{}, {}) ∩ [{}, {})",
                        records[i].name,
                        last_use[i],
                        records[j].name,
                        records[i].out.offset,
                        records[i].out.end(),
                        records[j].out.offset,
                        records[j].out.end()
                    ),
                ));
            }
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_graph::{Graph, LayerRole, Op, WeightGen};

    fn small_graph() -> Graph {
        let mut g = Graph::new("plan-pass-test");
        let x = g.input("image", &[1, 3, 8, 8]).unwrap();
        let conv = g
            .add(
                "stem",
                Op::Conv2d {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    pad: (1, 1),
                    groups: 1,
                    bias: true,
                },
                LayerRole::Backbone,
                &[x],
            )
            .unwrap();
        let act = g
            .add("stem.act", Op::Relu, LayerRole::Backbone, &[conv])
            .unwrap();
        let proj = g
            .add(
                "head",
                Op::Conv2d {
                    out_channels: 2,
                    kernel: (1, 1),
                    stride: (1, 1),
                    pad: (0, 0),
                    groups: 1,
                    bias: false,
                },
                LayerRole::Head,
                &[act],
            )
            .unwrap();
        g.set_output(proj);
        g
    }

    #[test]
    fn sound_plan_is_clean() {
        let g = small_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let diags = verify_plan(&g, &plan);
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn plan_for_a_different_graph_is_flagged() {
        let g = small_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        // Same topology, different head width: costs, shapes, and
        // coverage (node names match) still line up except the sizes.
        let mut other = Graph::new("other");
        let x = other.input("image", &[1, 3, 8, 8]).unwrap();
        let conv = other
            .add(
                "stem",
                Op::Conv2d {
                    out_channels: 4,
                    kernel: (3, 3),
                    stride: (1, 1),
                    pad: (1, 1),
                    groups: 1,
                    bias: true,
                },
                LayerRole::Backbone,
                &[x],
            )
            .unwrap();
        let act = other
            .add("stem.act", Op::Relu, LayerRole::Backbone, &[conv])
            .unwrap();
        let proj = other
            .add(
                "head",
                Op::Conv2d {
                    out_channels: 8,
                    kernel: (1, 1),
                    stride: (1, 1),
                    pad: (0, 0),
                    groups: 1,
                    bias: false,
                },
                LayerRole::Head,
                &[act],
            )
            .unwrap();
        other.set_output(proj);
        let diags = verify_plan(&other, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanCostMismatch));
        assert!(diags.iter().any(|d| d.code == Code::PlanShapeMismatch));
    }

    #[test]
    fn missing_node_is_a_coverage_error() {
        let g = small_graph();
        let plan = ExecPlan::compile(&g, WeightGen::new(0)).unwrap();
        let mut bigger = small_graph();
        let prev = bigger.output().unwrap();
        let extra = bigger
            .add("tail", Op::Identity, LayerRole::Head, &[prev])
            .unwrap();
        bigger.set_output(extra);
        let diags = verify_plan(&bigger, &plan);
        assert!(diags.iter().any(|d| d.code == Code::PlanCoverage));
    }
}
