/root/repo/target/release/deps/rand-d94af9945aa7acbd.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-d94af9945aa7acbd.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
