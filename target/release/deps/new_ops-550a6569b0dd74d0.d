/root/repo/target/release/deps/new_ops-550a6569b0dd74d0.d: crates/graph/tests/new_ops.rs Cargo.toml

/root/repo/target/release/deps/libnew_ops-550a6569b0dd74d0.rmeta: crates/graph/tests/new_ops.rs Cargo.toml

crates/graph/tests/new_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
