//! Serving experiment: fleet-scale continuous-batching sweep.
//!
//! `repro serve` drives the deterministic discrete-event serving simulator
//! at fleet scale — worker replicas behind a round-robin front door, a
//! seeded open-loop arrival process, and (in full mode) over a million
//! simulated requests — and compares three policies at each offered load:
//!
//! * **drt-batched** — deadline-aware DRT scheduling plus continuous
//!   batching: queued requests that resolve to the same LUT configuration
//!   coalesce into one batch-N pass with a sub-linear marginal cost.
//! * **drt-unbatched** — the same DRT scheduling, one request per pass.
//! * **static-full** — the fixed full-model baseline.
//!
//! Three arrival mixes stress different failure modes: periodic flash
//! crowds (`burst`), a sinusoidal day/night rate (`diurnal`), and an
//! adversarial tenant flooding a steady one (`adversarial`), where
//! per-tenant quotas + weighted-fair dequeueing keep the light tenant
//! alive. The sweep is a pure function of the seed and `--json` writes
//! `BENCH_serve.json` for regression tracking; any invariant violation
//! (lost requests, non-partitioning rates, batching not strictly winning
//! at overload, nondeterministic replay) exits non-zero.

use crate::experiments::verify::exit_code;
use crate::loadgen;
use crate::{banner, f, pct, Table};
use std::sync::Arc;
use vit_drt::json::{write_pretty, Json};
use vit_drt::{DrtEngine, EngineCore};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::{
    simulate, SchedulePolicy, ServerMetrics, SimArrival, SimConfig, TenantId, TenantSpec,
};

/// Workers per replica; the fleet is `REPLICAS * WORKERS` wide.
const WORKERS: usize = 4;
const QUEUE_DEPTH: usize = 32;
const MAX_BATCH: usize = 8;
const SEED: u64 = 42;

/// Flags of the `repro serve` subcommand.
#[derive(Debug, Default, Clone)]
pub struct ServeArgs {
    /// Write `BENCH_serve.json` next to the table output.
    pub json: bool,
    /// Fewer replicas and a much shorter trace for CI smoke runs.
    pub quick: bool,
}

/// Fleet shape and trace length for one mode.
struct Fleet {
    replicas: usize,
    /// Target arrivals per operating point of the load sweep.
    requests_per_point: usize,
}

impl Fleet {
    fn new(quick: bool) -> Self {
        if quick {
            Fleet {
                replicas: 2,
                requests_per_point: 6_000,
            }
        } else {
            // 4 load points x 300k ≥ 1.2M simulated requests per policy.
            Fleet {
                replicas: 8,
                requests_per_point: 300_000,
            }
        }
    }

    fn capacity_hz(&self, core: &EngineCore) -> f64 {
        (self.replicas * WORKERS) as f64 / core.max_resource()
    }
}

pub(crate) fn build_core() -> Arc<EngineCore> {
    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    engine.core().clone()
}

const POLICIES: [&str; 3] = ["drt-batched", "drt-unbatched", "static-full"];

fn policy_config(policy: &str, fleet: &Fleet) -> SimConfig {
    let base = |schedule| {
        SimConfig::new(WORKERS, QUEUE_DEPTH, schedule, 1.0).with_replicas(fleet.replicas)
    };
    match policy {
        "drt-batched" => base(SchedulePolicy::DrtDynamic).with_batching(MAX_BATCH),
        "drt-unbatched" => base(SchedulePolicy::DrtDynamic),
        "static-full" => base(SchedulePolicy::static_full()),
        other => unreachable!("unknown serve policy {other}"),
    }
}

/// Offered-load multipliers for the sweep. DRT degrades toward the
/// cheapest LUT path, so its true saturation point is `full / min` times
/// the full-model capacity — the sweep brackets both knees: below full
/// capacity, inside the band between them, and past the DRT knee where
/// even the cheapest path saturates.
fn load_points(core: &EngineCore, quick: bool) -> Vec<f64> {
    let ratio = core.max_resource() / core.min_resource();
    if quick {
        vec![0.8, 1.0 + (ratio - 1.0) * 0.5, ratio * 1.5]
    } else {
        vec![0.8, 1.0 + (ratio - 1.0) * 0.5, ratio * 1.3, ratio * 2.2]
    }
}

/// True in the overload band where coalescing must win outright: the full
/// model can no longer keep up, but requests still reach dispatch with
/// enough slack for the deadline-aware bound to grow batches. Past the
/// cheapest-path knee queue waits eat the entire slack budget, the bound
/// (correctly) refuses to coalesce, and goodput ties with unbatched.
fn batching_win_region(core: &EngineCore, load_x: f64) -> bool {
    load_x > 1.0 && load_x <= core.max_resource() / core.min_resource()
}

/// Batched goodput may trail unbatched by at most this much anywhere
/// outside the win region. Which individual request meets its deadline can
/// flip when a batch shifts completion instants, so exact ties are not
/// guaranteed; the observed noise is ~3e-5 while the deadline-blind
/// coalescer this tolerance guards against lost 0.16 goodput.
const REGRESS_TOL: f64 = 1e-3;

/// The bursty arrival trace for one operating point: Poisson base at
/// `load_x` times fleet capacity plus periodic flash crowds.
fn burst_arrivals(core: &EngineCore, fleet: &Fleet, load_x: f64, seed: u64) -> Vec<SimArrival> {
    let full = core.max_resource();
    let rate = load_x * fleet.capacity_hz(core);
    let duration = fleet.requests_per_point as f64 / rate;
    loadgen::poisson_with_bursts(
        rate,
        duration,
        2.0 * full, // slack fits the full model plus some queueing
        duration / 50.0,
        3 * fleet.replicas * WORKERS,
        seed,
    )
}

struct Cell {
    policy: &'static str,
    metrics: ServerMetrics,
}

struct LoadPoint {
    load_x: f64,
    cells: Vec<Cell>,
}

fn run_point(core: &EngineCore, fleet: &Fleet, load_x: f64, seed: u64) -> LoadPoint {
    let arrivals = burst_arrivals(core, fleet, load_x, seed);
    LoadPoint {
        load_x,
        cells: POLICIES
            .iter()
            .map(|policy| Cell {
                policy,
                metrics: simulate(core, &policy_config(policy, fleet), &arrivals),
            })
            .collect(),
    }
}

/// The diurnal mix at a mean load past the full-model knee: batched vs
/// unbatched DRT riding a day/night rate swing.
fn run_diurnal(core: &EngineCore, fleet: &Fleet) -> Vec<Cell> {
    let full = core.max_resource();
    let rate = 1.5 * fleet.capacity_hz(core);
    let duration = (fleet.requests_per_point / 2) as f64 / rate;
    let arrivals = loadgen::diurnal(rate, 0.8, duration / 3.0, duration, 2.0 * full, SEED + 17);
    POLICIES
        .iter()
        .map(|policy| Cell {
            policy,
            metrics: simulate(core, &policy_config(policy, fleet), &arrivals),
        })
        .collect()
}

/// The adversarial mix: a steady tenant 0 at half fleet capacity while
/// tenant 1 floods the queue. Returns (with quotas, without quotas) under
/// batched DRT.
fn run_adversarial(core: &EngineCore, fleet: &Fleet) -> (ServerMetrics, ServerMetrics) {
    let full = core.max_resource();
    let steady = 0.5 * fleet.capacity_hz(core);
    let duration = (fleet.requests_per_point / 4) as f64 / steady;
    let arrivals = loadgen::adversarial(
        steady,
        duration,
        2.0 * full,
        duration / 40.0,
        2 * fleet.replicas * QUEUE_DEPTH,
        SEED + 29,
    );
    let quotas = vec![
        // The steady tenant gets weight and headroom; the flooder is
        // capped to a quarter of each replica's queue.
        TenantSpec::new(TenantId(0)).with_weight(2.0),
        TenantSpec::new(TenantId(1)).with_queue_share(0.25),
    ];
    let with_quotas = simulate(
        core,
        &policy_config("drt-batched", fleet).with_tenants(quotas),
        &arrivals,
    );
    let without = simulate(core, &policy_config("drt-batched", fleet), &arrivals);
    (with_quotas, without)
}

/// Invariant violations that fail the run (non-zero exit).
fn violations(core: &EngineCore, points: &[LoadPoint]) -> Vec<String> {
    let mut out = Vec::new();
    for point in points {
        for cell in &point.cells {
            let m = &cell.metrics;
            if !m.accounts_for_all_submissions() {
                out.push(format!(
                    "load {:.2}x: {} loses requests (completed {} + shed {} + failed {} != {})",
                    point.load_x,
                    cell.policy,
                    m.completed,
                    m.shed(),
                    m.fault_failures,
                    m.submitted
                ));
            }
            if (m.goodput + m.deadline_miss_rate - 1.0).abs() > 1e-9 {
                out.push(format!(
                    "load {:.2}x: {} goodput {} + miss rate {} does not partition the load",
                    point.load_x, cell.policy, m.goodput, m.deadline_miss_rate
                ));
            }
        }
        let goodput = |name: &str| {
            point
                .cells
                .iter()
                .find(|c| c.policy == name)
                .map(|c| c.metrics.goodput)
        };
        if let (Some(batched), Some(unbatched), Some(stat)) = (
            goodput("drt-batched"),
            goodput("drt-unbatched"),
            goodput("static-full"),
        ) {
            if batching_win_region(core, point.load_x) {
                // Overloaded with dispatch-time slack to spare: coalescing
                // can engage, so batched must win outright.
                if batched <= unbatched {
                    out.push(format!(
                        "load {:.2}x: batched DRT goodput {batched} is not strictly above \
                         unbatched {unbatched} in the overload band",
                        point.load_x
                    ));
                }
            } else if batched + REGRESS_TOL < unbatched {
                // Outside the band coalescing may be a no-op but must
                // never hurt beyond deadline-reshuffle noise.
                out.push(format!(
                    "load {:.2}x: batching regressed goodput ({batched} < {unbatched})",
                    point.load_x
                ));
            }
            if point.load_x > 1.0 && unbatched <= stat {
                out.push(format!(
                    "load {:.2}x: unbatched DRT goodput {unbatched} does not beat \
                     static-full {stat} at overload",
                    point.load_x
                ));
            }
        }
    }
    out
}

/// Determinism gate: the heaviest point replayed twice must agree on every
/// counter.
fn determinism_violations(core: &EngineCore, fleet: &Fleet, load_x: f64) -> Vec<String> {
    let a = run_point(core, fleet, load_x, SEED);
    let b = run_point(core, fleet, load_x, SEED);
    for (ca, cb) in a.cells.iter().zip(&b.cells) {
        let (ma, mb) = (&ca.metrics, &cb.metrics);
        if (
            ma.submitted,
            ma.completed,
            ma.shed(),
            ma.batched_completions,
        ) != (
            mb.submitted,
            mb.completed,
            mb.shed(),
            mb.batched_completions,
        ) || ma.p99_latency != mb.p99_latency
            || ma.config_histogram != mb.config_histogram
        {
            return vec![format!(
                "fleet sweep is not deterministic at load {load_x:.2}x: two replays disagree \
                 under {}",
                ca.policy
            )];
        }
    }
    Vec::new()
}

fn cell_json(cell: &Cell) -> Json {
    let m = &cell.metrics;
    Json::Obj(vec![
        ("policy".into(), Json::Str(cell.policy.into())),
        ("submitted".into(), Json::Int(m.submitted as i64)),
        ("completed".into(), Json::Int(m.completed as i64)),
        ("shed".into(), Json::Int(m.shed() as i64)),
        ("goodput".into(), Json::Num(m.goodput)),
        ("deadline_miss_rate".into(), Json::Num(m.deadline_miss_rate)),
        (
            "batched_completions".into(),
            Json::Int(m.batched_completions as i64),
        ),
        ("mean_batch_size".into(), Json::Num(m.mean_batch_size)),
        (
            "mean_delivered_accuracy".into(),
            Json::Num(m.mean_delivered_accuracy),
        ),
        ("p99_latency".into(), Json::Num(m.p99_latency)),
        ("p999_queue_wait".into(), Json::Num(m.p999_queue_wait)),
    ])
}

fn tenant_json(m: &ServerMetrics, id: TenantId) -> Json {
    match m.tenant(id) {
        Some(t) => Json::Obj(vec![
            ("submitted".into(), Json::Int(t.submitted as i64)),
            ("goodput".into(), Json::Num(t.goodput)),
            ("miss_rate".into(), Json::Num(t.miss_rate)),
            ("shed_rate".into(), Json::Num(t.shed_rate)),
            (
                "shed_over_quota".into(),
                Json::Int(t.shed_over_quota as i64),
            ),
        ]),
        None => Json::Null,
    }
}

fn render_json(
    fleet: &Fleet,
    quick: bool,
    points: &[LoadPoint],
    diurnal: &[Cell],
    adversarial: &(ServerMetrics, ServerMetrics),
    violations: &[String],
) -> String {
    let doc = Json::Obj(vec![
        ("benchmark".into(), Json::Str("serve".into())),
        ("quick".into(), Json::Bool(quick)),
        ("seed".into(), Json::Int(SEED as i64)),
        ("replicas".into(), Json::Int(fleet.replicas as i64)),
        ("workers_per_replica".into(), Json::Int(WORKERS as i64)),
        ("queue_depth".into(), Json::Int(QUEUE_DEPTH as i64)),
        ("max_batch".into(), Json::Int(MAX_BATCH as i64)),
        (
            "points".into(),
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        Json::Obj(vec![
                            ("load_x".into(), Json::Num(p.load_x)),
                            (
                                "policies".into(),
                                Json::Arr(p.cells.iter().map(cell_json).collect()),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "diurnal".into(),
            Json::Arr(diurnal.iter().map(cell_json).collect()),
        ),
        (
            "adversarial".into(),
            Json::Obj(vec![
                (
                    "with_quotas".into(),
                    Json::Obj(vec![
                        ("tenant0".into(), tenant_json(&adversarial.0, TenantId(0))),
                        ("tenant1".into(), tenant_json(&adversarial.0, TenantId(1))),
                    ]),
                ),
                (
                    "without_quotas".into(),
                    Json::Obj(vec![
                        ("tenant0".into(), tenant_json(&adversarial.1, TenantId(0))),
                        ("tenant1".into(), tenant_json(&adversarial.1, TenantId(1))),
                    ]),
                ),
            ]),
        ),
        (
            "violations".into(),
            Json::Arr(violations.iter().map(|v| Json::Str(v.clone())).collect()),
        ),
    ]);
    let mut s = write_pretty(&doc);
    s.push('\n');
    s
}

/// `repro serve`: the fleet-scale sweep. Returns the process exit code
/// (non-zero when an invariant is violated).
pub fn run(args: ServeArgs) -> i32 {
    banner("Serving — continuous-batching DRT fleet vs unbatched DRT vs static full model");
    let core = build_core();
    let fleet = Fleet::new(args.quick);
    let full = core.max_resource();
    let points_x = load_points(&core, args.quick);
    println!(
        "SegFormer-B0 @ 64x64 GPU-time LUT: {} Pareto paths (cheapest {:.3} ms, full \
         {:.3} ms); {} replicas x {WORKERS} workers, queue depth {QUEUE_DEPTH}/replica, \
         max batch {MAX_BATCH}, ~{} arrivals/point, slack 2.0x full, seed {SEED}{}",
        core.lut().len(),
        core.min_resource() * 1e3,
        full * 1e3,
        fleet.replicas,
        fleet.requests_per_point,
        if args.quick { " (quick)" } else { "" },
    );
    println!();

    let points: Vec<LoadPoint> = points_x
        .iter()
        .enumerate()
        .map(|(i, &load_x)| run_point(&core, &fleet, load_x, SEED + i as u64))
        .collect();
    let simulated: usize = points
        .iter()
        .flat_map(|p| p.cells.iter().map(|c| c.metrics.submitted))
        .sum();

    let mut t = Table::new(&[
        "load (x capacity)",
        "policy",
        "goodput",
        "miss rate",
        "shed rate",
        "batched",
        "mean batch",
        "delivered acc",
        "p99 latency (ms)",
        "p99.9 qwait (ms)",
    ]);
    for point in &points {
        for cell in &point.cells {
            let m = &cell.metrics;
            t.row(&[
                f(point.load_x, 2),
                cell.policy.to_string(),
                pct(m.goodput),
                pct(m.deadline_miss_rate),
                pct(m.shed_rate),
                format!("{}", m.batched_completions),
                f(m.mean_batch_size, 2),
                f(m.mean_delivered_accuracy, 3),
                f(m.p99_latency * 1e3, 3),
                f(m.p999_queue_wait * 1e3, 3),
            ]);
        }
    }
    t.print();
    println!();

    println!("diurnal mix (mean 1.5x capacity, 0.8 swing):");
    let diurnal = run_diurnal(&core, &fleet);
    let mut td = Table::new(&["policy", "goodput", "miss rate", "mean batch"]);
    for cell in &diurnal {
        td.row(&[
            cell.policy.to_string(),
            pct(cell.metrics.goodput),
            pct(cell.metrics.deadline_miss_rate),
            f(cell.metrics.mean_batch_size, 2),
        ]);
    }
    td.print();
    println!();

    println!("adversarial mix (steady tenant 0 vs flooding tenant 1, batched DRT):");
    let adversarial = run_adversarial(&core, &fleet);
    let mut ta = Table::new(&[
        "quotas",
        "tenant",
        "goodput",
        "shed rate",
        "over-quota sheds",
    ]);
    for (label, m) in [("on", &adversarial.0), ("off", &adversarial.1)] {
        for id in [TenantId(0), TenantId(1)] {
            if let Some(tm) = m.tenant(id) {
                ta.row(&[
                    label.to_string(),
                    format!("{id}"),
                    pct(tm.goodput),
                    pct(tm.shed_rate),
                    format!("{}", tm.shed_over_quota),
                ]);
            }
        }
    }
    ta.print();
    println!();

    let mut all_violations = violations(&core, &points);
    for (label, m) in [
        ("diurnal", &diurnal[0].metrics),
        ("adversarial+quotas", &adversarial.0),
        ("adversarial-quotas", &adversarial.1),
    ] {
        if !m.accounts_for_all_submissions() {
            all_violations.push(format!("{label} mix loses requests"));
        }
    }
    let steady = |m: &ServerMetrics| m.tenant(TenantId(0)).map_or(0.0, |t| t.goodput);
    if steady(&adversarial.0) <= steady(&adversarial.1) {
        all_violations.push(format!(
            "tenant quotas did not protect the steady tenant ({} with vs {} without)",
            steady(&adversarial.0),
            steady(&adversarial.1)
        ));
    }
    let max_x = points_x.iter().copied().fold(0.0, f64::max);
    all_violations.extend(determinism_violations(&core, &fleet, max_x));

    println!("simulated {simulated} requests across the load sweep.");
    if all_violations.is_empty() {
        println!(
            "every point conserves requests, batched DRT strictly beats unbatched DRT \
             in the overload band below the cheapest-path knee, quotas protect the \
             steady tenant, and the sweep replays deterministically."
        );
    } else {
        for v in &all_violations {
            println!("VIOLATION: {v}");
        }
    }

    if args.json {
        let path = "BENCH_serve.json";
        std::fs::write(
            path,
            render_json(
                &fleet,
                args.quick,
                &points,
                &diurnal,
                &adversarial,
                &all_violations,
            ),
        )
        .expect("write BENCH_serve.json");
        println!("wrote {path}");
    }
    exit_code(all_violations.len(), 0, false)
}

/// Back-compat entry point used by `repro all`: the quick sweep, panicking
/// on violations instead of exiting.
pub fn serve() {
    let code = run(ServeArgs {
        json: false,
        quick: true,
    });
    assert_eq!(code, 0, "serve sweep reported violations");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_fleet() -> Fleet {
        // Even smaller than --quick: unit tests run in debug mode.
        Fleet {
            replicas: 2,
            requests_per_point: 2_500,
        }
    }

    #[test]
    fn quick_sweep_has_no_violations_and_batching_wins_at_overload() {
        let core = build_core();
        let fleet = quick_fleet();
        let points: Vec<LoadPoint> = load_points(&core, true)
            .iter()
            .enumerate()
            .map(|(i, &x)| run_point(&core, &fleet, x, SEED + i as u64))
            .collect();
        assert_eq!(violations(&core, &points), Vec::<String>::new());
        // The in-band overload point really exercised coalescing (and the
        // violations gate above already required it to win outright there).
        let overload = points
            .iter()
            .find(|p| batching_win_region(&core, p.load_x))
            .expect("quick sweep includes an in-band overload point");
        let batched = &overload.cells[0].metrics;
        assert!(batched.batched_completions > 0);
        assert!(batched.mean_batch_size > 1.0);
    }

    #[test]
    fn sweep_is_deterministic_across_runs() {
        let core = build_core();
        let fleet = quick_fleet();
        let heavy = *load_points(&core, true).last().unwrap();
        assert_eq!(
            determinism_violations(&core, &fleet, heavy),
            Vec::<String>::new()
        );
    }

    #[test]
    fn quotas_protect_the_steady_tenant_in_the_adversarial_mix() {
        let core = build_core();
        let (with_quotas, without) = run_adversarial(&core, &quick_fleet());
        assert!(with_quotas.accounts_for_all_submissions());
        assert!(without.accounts_for_all_submissions());
        let t0_with = with_quotas.tenant(TenantId(0)).expect("tenant 0 submitted");
        let t0_without = without.tenant(TenantId(0)).expect("tenant 0 submitted");
        assert!(
            t0_with.goodput > t0_without.goodput,
            "quotas must lift the steady tenant's goodput ({} vs {})",
            t0_with.goodput,
            t0_without.goodput
        );
        // The flooder pays for its own excess: quota sheds land on tenant 1.
        let t1_with = with_quotas.tenant(TenantId(1)).expect("tenant 1 submitted");
        assert!(t1_with.shed_over_quota > 0);
        assert_eq!(t0_with.shed_over_quota, 0);
        // Rates partition each tenant's submissions.
        for t in [t0_with, t1_with] {
            assert!((t.goodput + t.miss_rate + t.shed_rate - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn json_round_trips_through_the_engine_parser() {
        let core = build_core();
        let fleet = quick_fleet();
        let points = vec![run_point(&core, &fleet, 0.8, SEED)];
        let diurnal = vec![Cell {
            policy: "drt-batched",
            metrics: points[0].cells[0].metrics.clone(),
        }];
        let adversarial = run_adversarial(&core, &fleet);
        let text = render_json(&fleet, true, &points, &diurnal, &adversarial, &[]);
        let doc = vit_drt::json::parse(&text).expect("valid JSON");
        assert_eq!(doc.get("benchmark").and_then(|b| b.as_str()), Some("serve"));
        let pts = doc.get("points").and_then(|p| p.as_arr()).unwrap();
        let cell = pts[0].get("policies").and_then(|p| p.as_arr()).unwrap()[0].clone();
        let m = &points[0].cells[0].metrics;
        assert_eq!(
            cell.get("submitted").and_then(|s| s.as_usize()),
            Some(m.submitted)
        );
        assert_eq!(
            cell.get("goodput").and_then(|g| g.as_f64()),
            Some(m.goodput)
        );
        let adv = doc.get("adversarial").unwrap();
        assert!(adv
            .get("with_quotas")
            .and_then(|w| w.get("tenant0"))
            .is_some());
    }
}
