/root/repo/target/debug/deps/vit_tensor-c354e6d31577bf95.d: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/vit_tensor-c354e6d31577bf95: crates/tensor/src/lib.rs crates/tensor/src/error.rs crates/tensor/src/ops/mod.rs crates/tensor/src/ops/activation.rs crates/tensor/src/ops/attention.rs crates/tensor/src/ops/conv.rs crates/tensor/src/ops/matmul.rs crates/tensor/src/ops/norm.rs crates/tensor/src/ops/pool.rs crates/tensor/src/ops/resize.rs crates/tensor/src/quant.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/error.rs:
crates/tensor/src/ops/mod.rs:
crates/tensor/src/ops/activation.rs:
crates/tensor/src/ops/attention.rs:
crates/tensor/src/ops/conv.rs:
crates/tensor/src/ops/matmul.rs:
crates/tensor/src/ops/norm.rs:
crates/tensor/src/ops/pool.rs:
crates/tensor/src/ops/resize.rs:
crates/tensor/src/quant.rs:
crates/tensor/src/tensor.rs:
