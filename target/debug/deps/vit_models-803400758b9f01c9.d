/root/repo/target/debug/deps/vit_models-803400758b9f01c9.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/libvit_models-803400758b9f01c9.rlib: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/libvit_models-803400758b9f01c9.rmeta: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
