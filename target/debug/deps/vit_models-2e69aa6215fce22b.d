/root/repo/target/debug/deps/vit_models-2e69aa6215fce22b.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/debug/deps/vit_models-2e69aa6215fce22b: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
