//! Property-based tests of the accelerator model: mapping invariants that
//! must hold for any layer geometry.

use proptest::prelude::*;
use vit_accel::{simulate, AccelConfig, SimOptions, TOTAL_PARALLEL_MACS};
use vit_graph::{Graph, LayerRole, Op};

fn conv_graph(cin: usize, cout: usize, k: usize, hw: usize, groups: usize) -> Graph {
    let mut g = Graph::new("p");
    let x = g.input("in", &[1, cin, hw, hw]).unwrap();
    let c = g
        .add(
            "conv",
            Op::Conv2d {
                out_channels: cout,
                kernel: (k, k),
                stride: (1, 1),
                pad: (k / 2, k / 2),
                groups,
                bias: false,
            },
            LayerRole::Other,
            &[x],
        )
        .unwrap();
    g.set_output(c);
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cycles_bounded_below_by_perfect_utilization(
        cin in 1usize..512,
        cout in 1usize..512,
        k in prop::sample::select(vec![1usize, 3, 5]),
        hw in 4usize..48,
    ) {
        let g = conv_graph(cin, cout, k, hw, 1);
        let r = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
        let macs: u64 = r.layers.iter().map(|l| l.macs).sum();
        let cycles = r.total_cycles();
        // Can never beat 16384 MACs per cycle.
        prop_assert!(cycles as u128 * TOTAL_PARALLEL_MACS as u128 >= macs as u128,
                     "cycles {cycles} macs {macs}");
        // Utilization in range on every layer.
        for l in &r.layers {
            prop_assert!(l.utilization <= 1.0 + 1e-9);
            prop_assert!(l.utilization >= 0.0);
        }
    }

    #[test]
    fn cross_pe_reduction_never_hurts(
        cin in 1usize..256,
        cout in 1usize..256,
        hw in 4usize..32,
    ) {
        let g = conv_graph(cin, cout, 3, hw, 1);
        let on = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
        let off = simulate(
            &g,
            &AccelConfig::accelerator_star(),
            &SimOptions { cross_pe_reduction: false, ..SimOptions::default() },
        );
        // The cross-PE mapper explores a superset of mappings.
        prop_assert!(on.total_cycles() <= off.total_cycles());
        // Weight passes can only shrink with more split options.
        let wp = |r: &vit_accel::AccelReport| r.layers.iter().map(|l| l.weight_passes).max().unwrap_or(0);
        prop_assert!(wp(&on) <= wp(&off));
    }

    #[test]
    fn depthwise_utilization_is_poor_on_wide_lanes(
        c in 8usize..256,
        hw in 4usize..32,
    ) {
        let g = conv_graph(c, c, 3, hw, c);
        let r = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
        let conv = r.layers.iter().find(|l| l.name == "conv").unwrap();
        // C0 = 32 lanes with 1 input channel per group: utilization can
        // never exceed 1/32 by much (ceil effects can only hurt).
        prop_assert!(conv.utilization <= 1.0 / 32.0 + 1e-9, "util {}", conv.utilization);
    }

    #[test]
    fn bigger_weight_memory_never_increases_passes_or_cycles(
        cin in 1usize..768,
        cout in 1usize..768,
        hw in 4usize..24,
    ) {
        let g = conv_graph(cin, cout, 1, hw, 1);
        let small = simulate(
            &g,
            &AccelConfig { weight_mem_kb: 32, ..AccelConfig::accelerator_star() },
            &SimOptions::default(),
        );
        let big = simulate(
            &g,
            &AccelConfig { weight_mem_kb: 1024, ..AccelConfig::accelerator_star() },
            &SimOptions::default(),
        );
        prop_assert!(big.total_cycles() <= small.total_cycles());
        let wp = |r: &vit_accel::AccelReport| r.layers.iter().map(|l| l.weight_passes).max().unwrap_or(0);
        prop_assert!(wp(&big) <= wp(&small));
    }

    #[test]
    fn energy_and_traffic_are_positive_and_finite(
        cin in 1usize..128,
        cout in 1usize..128,
        hw in 4usize..24,
    ) {
        let g = conv_graph(cin, cout, 3, hw, 1);
        let r = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default());
        prop_assert!(r.total_energy_j() > 0.0 && r.total_energy_j().is_finite());
        let conv = r.layers.iter().find(|l| l.name == "conv").unwrap();
        // DRAM traffic at least covers weights + outputs once.
        let min_traffic = (cout * cin * 9 + cout * hw * hw) as u64;
        prop_assert!(conv.dram_bytes >= min_traffic);
    }

    #[test]
    fn all_mac_budget_splits_simulate_consistently(
        k0 in prop::sample::select(vec![8usize, 16, 32, 64]),
        c0 in prop::sample::select(vec![8usize, 16, 32]),
    ) {
        let Some(cfg) = AccelConfig::with_vectorization(k0, c0, 128, 64) else {
            return Ok(());
        };
        prop_assert_eq!(cfg.parallel_macs(), TOTAL_PARALLEL_MACS);
        let g = conv_graph(64, 64, 3, 16, 1);
        let r = simulate(&g, &cfg, &SimOptions::default());
        let macs: u64 = r.layers.iter().map(|l| l.macs).sum();
        // MAC count is architecture-independent.
        prop_assert_eq!(macs, (64 * 64 * 9 * 16 * 16) as u64);
    }

    #[test]
    fn area_is_monotone_in_memory(
        wm in 16usize..2048,
        am in 16usize..256,
    ) {
        let small = AccelConfig { weight_mem_kb: wm, act_mem_kb: am, ..AccelConfig::accelerator_star() };
        let bigger = AccelConfig { weight_mem_kb: wm * 2, act_mem_kb: am, ..AccelConfig::accelerator_star() };
        prop_assert!(bigger.pe_array_area_mm2() > small.pe_array_area_mm2());
    }
}
