/root/repo/target/release/deps/repro-2585fd9022056ed3.d: crates/bench/src/main.rs Cargo.toml

/root/repo/target/release/deps/librepro-2585fd9022056ed3.rmeta: crates/bench/src/main.rs Cargo.toml

crates/bench/src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
