/root/repo/target/release/deps/repro-29e438833c17fb70.d: crates/bench/src/main.rs

/root/repo/target/release/deps/repro-29e438833c17fb70: crates/bench/src/main.rs

crates/bench/src/main.rs:
