/root/repo/target/debug/deps/vit_graph-513be47a9f8a1b1b.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/debug/deps/libvit_graph-513be47a9f8a1b1b.rlib: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/debug/deps/libvit_graph-513be47a9f8a1b1b.rmeta: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
