/root/repo/target/release/examples/accelerator_dse-9d5f7200a3cf2df8.d: crates/core/../../examples/accelerator_dse.rs

/root/repo/target/release/examples/accelerator_dse-9d5f7200a3cf2df8: crates/core/../../examples/accelerator_dse.rs

crates/core/../../examples/accelerator_dse.rs:
