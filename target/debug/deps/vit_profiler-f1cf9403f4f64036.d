/root/repo/target/debug/deps/vit_profiler-f1cf9403f4f64036.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

/root/repo/target/debug/deps/vit_profiler-f1cf9403f4f64036: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
