//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use vit_tensor::{ops, quant::QuantTensor, Tensor};

fn small_tensor(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim, any::<u64>())
        .prop_map(|(r, c, seed)| Tensor::rand_uniform(&[r, c], -2.0, 2.0, seed))
}

proptest! {
    #[test]
    fn matmul_distributes_over_addition(
        (m, k, n) in (1usize..6, 1usize..6, 1usize..6),
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let a = Tensor::rand_uniform(&[m, k], -1.0, 1.0, s1);
        let b = Tensor::rand_uniform(&[k, n], -1.0, 1.0, s2);
        let c = Tensor::rand_uniform(&[k, n], -1.0, 1.0, s3);
        // a (b + c) == a b + a c
        let lhs = ops::matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = ops::matmul(&a, &b).unwrap().add(&ops::matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn conv_is_linear_in_input(
        (h, w) in (3usize..8, 3usize..8),
        s1 in any::<u64>(), s2 in any::<u64>(), s3 in any::<u64>(),
    ) {
        let x1 = Tensor::rand_uniform(&[1, 2, h, w], -1.0, 1.0, s1);
        let x2 = Tensor::rand_uniform(&[1, 2, h, w], -1.0, 1.0, s2);
        let k = Tensor::rand_uniform(&[3, 2, 3, 3], -1.0, 1.0, s3);
        let p = ops::Conv2dParams::new().pad(1);
        let lhs = ops::conv2d(&x1.add(&x2).unwrap(), &k, None, p).unwrap();
        let rhs = ops::conv2d(&x1, &k, None, p).unwrap()
            .add(&ops::conv2d(&x2, &k, None, p).unwrap()).unwrap();
        for (a, b) in lhs.data().iter().zip(rhs.data().iter()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn softmax_rows_are_distributions(t in small_tensor(8)) {
        let s = ops::softmax_last_dim(&t).unwrap();
        let cols = t.shape()[1];
        for r in 0..t.shape()[0] {
            let row = &s.data()[r * cols..(r + 1) * cols];
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn relu_is_idempotent(t in small_tensor(10)) {
        let once = ops::relu(&t);
        let twice = ops::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn bilinear_resize_preserves_range(
        (h, w, oh, ow) in (2usize..6, 2usize..6, 1usize..12, 1usize..12),
        seed in any::<u64>(),
    ) {
        let t = Tensor::rand_uniform(&[1, 1, h, w], 0.0, 1.0, seed);
        let r = ops::bilinear_resize(&t, oh, ow).unwrap();
        for &v in r.data() {
            prop_assert!((-1e-6..=1.0 + 1e-6).contains(&v));
        }
    }

    #[test]
    fn quantization_error_bounded(t in small_tensor(12)) {
        let q = QuantTensor::quantize(&t);
        let d = q.dequantize();
        for (a, b) in t.data().iter().zip(d.data().iter()) {
            prop_assert!((a - b).abs() <= q.scale() * 0.5 + 1e-6);
        }
    }

    #[test]
    fn layer_norm_output_statistics(
        (rows, feat) in (1usize..5, 4usize..32),
        seed in any::<u64>(),
    ) {
        let t = Tensor::rand_uniform(&[rows, feat], -4.0, 4.0, seed);
        let g = Tensor::ones(&[feat]);
        let b = Tensor::zeros(&[feat]);
        let n = ops::layer_norm(&t, &g, &b, 1e-5).unwrap();
        for r in 0..rows {
            let row = &n.data()[r * feat..(r + 1) * feat];
            let mean: f32 = row.iter().sum::<f32>() / feat as f32;
            prop_assert!(mean.abs() < 1e-3);
        }
    }

    #[test]
    fn permute_is_invertible(
        (a, b, c) in (1usize..5, 1usize..5, 1usize..5),
        seed in any::<u64>(),
    ) {
        let t = Tensor::rand_uniform(&[a, b, c], -1.0, 1.0, seed);
        let p = t.permute(&[2, 0, 1]).unwrap();
        let back = p.permute(&[1, 2, 0]).unwrap();
        prop_assert_eq!(t, back);
    }

    #[test]
    fn concat_then_slice_round_trips_shapes(
        (c1, c2) in (1usize..5, 1usize..5),
        seed in any::<u64>(),
    ) {
        let a = Tensor::rand_uniform(&[1, c1, 3, 3], -1.0, 1.0, seed);
        let b = Tensor::rand_uniform(&[1, c2, 3, 3], -1.0, 1.0, seed.wrapping_add(1));
        let cat = ops::concat_channels(&[&a, &b]).unwrap();
        prop_assert_eq!(cat.shape()[1], c1 + c2);
        prop_assert_eq!(&cat.data()[..a.numel()], a.data());
        prop_assert_eq!(&cat.data()[a.numel()..], b.data());
    }

    #[test]
    fn attention_is_permutation_equivariant_for_self_attention(
        seed in any::<u64>(),
    ) {
        // Swapping two tokens in the input swaps them in the output
        // (no positional encoding inside the kernel).
        let dim = 8;
        let x = Tensor::rand_uniform(&[1, 4, dim], -1.0, 1.0, seed);
        let w = ops::AttentionWeights::synthetic(dim, seed.wrapping_add(9));
        let y = ops::multi_head_attention(&x, &x, &w, 2).unwrap();

        // Swap tokens 1 and 2.
        let mut swapped = x.clone();
        for i in 0..dim {
            let a = x.at(&[0, 1, i]);
            let b = x.at(&[0, 2, i]);
            swapped.set(&[0, 1, i], b);
            swapped.set(&[0, 2, i], a);
        }
        let ys = ops::multi_head_attention(&swapped, &swapped, &w, 2).unwrap();
        for i in 0..dim {
            prop_assert!((y.at(&[0, 1, i]) - ys.at(&[0, 2, i])).abs() < 1e-4);
            prop_assert!((y.at(&[0, 2, i]) - ys.at(&[0, 1, i])).abs() < 1e-4);
            prop_assert!((y.at(&[0, 0, i]) - ys.at(&[0, 0, i])).abs() < 1e-4);
        }
    }
}
