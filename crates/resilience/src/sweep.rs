//! Sweep driver: evaluates (resource, accuracy) for execution-path
//! configurations, in parallel, producing the trade-off points behind
//! Figures 6 and 7.

use crate::accuracy::AccuracyModel;
use crate::config::Workload;
use serde::{Deserialize, Serialize};
use vit_models::{
    build_segformer, build_swin_upernet, SegFormerConfig, SegFormerDynamic, SegFormerVariant,
    SwinConfig, SwinDynamic, SwinVariant,
};
use vit_profiler::GpuModel;

/// Which resource a sweep measures (the paper uses execution time as its
/// running example of a dynamic constraint and reports energy alongside).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceKind {
    /// Modeled GPU latency in seconds.
    GpuTime,
    /// Modeled GPU energy in joules.
    GpuEnergy,
}

/// A dynamic configuration of either segmentation family.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DynConfig {
    /// SegFormer execution path.
    SegFormer(SegFormerDynamic),
    /// Swin execution path.
    Swin(SwinDynamic),
}

/// One evaluated execution path.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Optional label (paper letter for published points).
    pub label: String,
    /// The configuration.
    pub config: DynConfig,
    /// Absolute resource value (seconds or joules).
    pub resource: f64,
    /// Resource normalized to the full model.
    pub norm_resource: f64,
    /// Normalized mIoU estimate from the accuracy model.
    pub norm_miou: f64,
}

/// Sweeps SegFormer configurations on a workload.
///
/// `image` overrides the dataset's native size (pass the native size to
/// reproduce paper figures). Configurations that fail to build are skipped.
pub fn sweep_segformer(
    variant: &SegFormerVariant,
    workload: Workload,
    image: (usize, usize),
    num_classes: usize,
    space: &[SegFormerDynamic],
    resource: ResourceKind,
) -> Vec<TradeoffPoint> {
    let accuracy = AccuracyModel::for_workload(workload);
    let gpu = GpuModel::titan_v();
    let measure = |d: &SegFormerDynamic| -> Option<f64> {
        let cfg = SegFormerConfig {
            variant: *variant,
            num_classes,
            image,
            batch: 1,
            dynamic: *d,
        };
        let g = build_segformer(&cfg).ok()?;
        Some(match resource {
            ResourceKind::GpuTime => gpu.total_time(&g),
            ResourceKind::GpuEnergy => gpu.total_energy(&g),
        })
    };
    let full = measure(&SegFormerDynamic::full(variant)).expect("full model must build");

    let results = parallel_map(space, |d| {
        let r = measure(d)?;
        Some(TradeoffPoint {
            label: String::new(),
            config: DynConfig::SegFormer(*d),
            resource: r,
            norm_resource: r / full,
            norm_miou: accuracy.norm_miou_segformer(d, variant),
        })
    });
    results.into_iter().flatten().collect()
}

/// Sweeps Swin configurations on a workload.
pub fn sweep_swin(
    variant: &SwinVariant,
    workload: Workload,
    image: (usize, usize),
    num_classes: usize,
    space: &[SwinDynamic],
    resource: ResourceKind,
) -> Vec<TradeoffPoint> {
    let accuracy = AccuracyModel::for_workload(workload);
    let gpu = GpuModel::titan_v();
    let measure = |d: &SwinDynamic| -> Option<f64> {
        let cfg = SwinConfig {
            variant: *variant,
            num_classes,
            image,
            batch: 1,
            dynamic: *d,
        };
        let g = build_swin_upernet(&cfg).ok()?;
        Some(match resource {
            ResourceKind::GpuTime => gpu.total_time(&g),
            ResourceKind::GpuEnergy => gpu.total_energy(&g),
        })
    };
    let full = measure(&SwinDynamic::full(variant)).expect("full model must build");
    let results = parallel_map(space, |d| {
        let r = measure(d)?;
        Some(TradeoffPoint {
            label: String::new(),
            config: DynConfig::Swin(*d),
            resource: r,
            norm_resource: r / full,
            norm_miou: accuracy.norm_miou_swin(d, variant),
        })
    });
    results.into_iter().flatten().collect()
}

/// Applies `f` to every item on a small thread pool, preserving order.
fn parallel_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(items.len().max(1));
    let chunk = items.len().div_ceil(threads.max(1));
    let mut out: Vec<Option<U>> = Vec::with_capacity(items.len());
    out.resize_with(items.len(), || None);
    crossbeam::scope(|scope| {
        for (slot_chunk, item_chunk) in out.chunks_mut(chunk).zip(items.chunks(chunk)) {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, item) in slot_chunk.iter_mut().zip(item_chunk.iter()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("sweep worker panicked");
    out.into_iter()
        .map(|v| v.expect("all slots filled"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::segformer_sweep_space;

    #[test]
    fn sweep_normalizes_to_full_model() {
        let v = SegFormerVariant::b2();
        let space = vec![
            SegFormerDynamic::full(&v),
            SegFormerDynamic::with_depths_and_fuse(&v, [2, 3, 5, 3], 1024),
        ];
        // Small image for speed; normalization is internal to the sweep.
        let pts = sweep_segformer(
            &v,
            Workload::SegFormerAde,
            (128, 128),
            150,
            &space,
            ResourceKind::GpuTime,
        );
        assert_eq!(pts.len(), 2);
        assert!((pts[0].norm_resource - 1.0).abs() < 1e-9);
        assert!(pts[1].norm_resource < 1.0);
        assert!(pts[1].norm_miou < pts[0].norm_miou);
    }

    #[test]
    fn sweep_covers_whole_space() {
        let v = SegFormerVariant::b0();
        let space = segformer_sweep_space(&v, 1, 4);
        let pts = sweep_segformer(
            &v,
            Workload::SegFormerAde,
            (128, 128),
            150,
            &space,
            ResourceKind::GpuTime,
        );
        assert_eq!(pts.len(), space.len());
    }

    #[test]
    fn energy_and_time_sweeps_differ() {
        let v = SegFormerVariant::b2();
        let space = vec![SegFormerDynamic::with_depths_and_fuse(
            &v,
            [2, 3, 5, 3],
            1024,
        )];
        let t = sweep_segformer(
            &v,
            Workload::SegFormerAde,
            (128, 128),
            150,
            &space,
            ResourceKind::GpuTime,
        );
        let e = sweep_segformer(
            &v,
            Workload::SegFormerAde,
            (128, 128),
            150,
            &space,
            ResourceKind::GpuEnergy,
        );
        // Energy savings exceed time savings for pruned configs (paper
        // §III-A: 17% time -> 28% energy).
        assert!(e[0].norm_resource < t[0].norm_resource);
    }

    #[test]
    fn swin_sweep_works() {
        let v = SwinVariant::tiny();
        let space = vec![
            SwinDynamic::full(&v),
            SwinDynamic {
                depths: [2, 2, 6, 2],
                bottleneck_in_channels: 1024,
            },
        ];
        let pts = sweep_swin(
            &v,
            Workload::SwinTinyAde,
            (128, 128),
            150,
            &space,
            ResourceKind::GpuTime,
        );
        assert_eq!(pts.len(), 2);
        assert!(pts[1].norm_resource < pts[0].norm_resource);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<_>>());
    }
}
