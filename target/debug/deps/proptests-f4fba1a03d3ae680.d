/root/repo/target/debug/deps/proptests-f4fba1a03d3ae680.d: crates/models/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f4fba1a03d3ae680: crates/models/tests/proptests.rs

crates/models/tests/proptests.rs:
