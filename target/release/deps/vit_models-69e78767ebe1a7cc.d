/root/repo/target/release/deps/vit_models-69e78767ebe1a7cc.d: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libvit_models-69e78767ebe1a7cc.rlib: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

/root/repo/target/release/deps/libvit_models-69e78767ebe1a7cc.rmeta: crates/models/src/lib.rs crates/models/src/detr.rs crates/models/src/error.rs crates/models/src/resnet.rs crates/models/src/segformer.rs crates/models/src/swin.rs crates/models/src/vit.rs

crates/models/src/lib.rs:
crates/models/src/detr.rs:
crates/models/src/error.rs:
crates/models/src/resnet.rs:
crates/models/src/segformer.rs:
crates/models/src/swin.rs:
crates/models/src/vit.rs:
