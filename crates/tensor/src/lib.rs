//! # vit-tensor
//!
//! Dense tensor kernels for the DRT-ViT reproduction: a row-major `f32`
//! [`Tensor`] plus the small set of operations vision transformers need —
//! convolution (standard, grouped, depthwise), matrix multiplication,
//! multi-head attention, LayerNorm/BatchNorm, pooling, bilinear resizing,
//! channel concatenation, and symmetric INT8 quantization.
//!
//! Everything is written from scratch against the standard library; `rand`
//! is used only for seeded synthetic weights so that experiments are
//! bit-reproducible.
//!
//! # Examples
//!
//! ```
//! use vit_tensor::{ops, Tensor};
//!
//! # fn main() -> Result<(), vit_tensor::TensorError> {
//! // A 3x3 blur over a synthetic image.
//! let image = Tensor::rand_uniform(&[1, 3, 16, 16], 0.0, 1.0, 42);
//! let kernel = Tensor::full(&[3, 3, 3, 3], 1.0 / 27.0);
//! let blurred = ops::conv2d(&image, &kernel, None, ops::Conv2dParams::new().pad(1))?;
//! assert_eq!(blurred.shape(), &[1, 3, 16, 16]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod corrupt;
mod error;
pub mod ops;
pub mod par;
pub mod quant;
pub mod shadow;
mod tensor;

pub use error::{Result, TensorError};
pub use par::{row_chunks, BufferPool, BufferPoolStats, ExecCtx, ThreadPool};
pub use shadow::{ShadowAccess, ShadowViolation, ShadowViolationKind};
pub use tensor::Tensor;
