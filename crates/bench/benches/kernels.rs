//! Criterion microbenchmarks of the tensor kernels that dominate graph
//! execution time.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use vit_tensor::{ops, quant::QuantTensor, Tensor};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels");

    let a = Tensor::rand_uniform(&[128, 128], -1.0, 1.0, 1);
    let b = Tensor::rand_uniform(&[128, 128], -1.0, 1.0, 2);
    g.bench_function("matmul_128", |bench| {
        bench.iter(|| ops::matmul(black_box(&a), black_box(&b)).unwrap())
    });

    let x = Tensor::rand_uniform(&[1, 32, 32, 32], -1.0, 1.0, 3);
    let k = Tensor::rand_uniform(&[32, 32, 3, 3], -1.0, 1.0, 4);
    g.bench_function("conv3x3_32ch_32px", |bench| {
        bench.iter(|| {
            ops::conv2d(
                black_box(&x),
                black_box(&k),
                None,
                ops::Conv2dParams::new().pad(1),
            )
            .unwrap()
        })
    });

    let k1 = Tensor::rand_uniform(&[64, 32, 1, 1], -1.0, 1.0, 5);
    g.bench_function("conv1x1_32to64_32px", |bench| {
        bench.iter(|| {
            ops::conv2d(
                black_box(&x),
                black_box(&k1),
                None,
                ops::Conv2dParams::new(),
            )
            .unwrap()
        })
    });

    let seq = Tensor::rand_uniform(&[1, 256, 64], -1.0, 1.0, 6);
    let w = ops::AttentionWeights::synthetic(64, 7);
    g.bench_function("attention_256tok_64d", |bench| {
        bench.iter(|| ops::multi_head_attention(black_box(&seq), black_box(&seq), &w, 8).unwrap())
    });

    let img = Tensor::rand_uniform(&[1, 16, 32, 32], -1.0, 1.0, 8);
    g.bench_function("bilinear_resize_2x", |bench| {
        bench.iter(|| ops::bilinear_resize(black_box(&img), 64, 64).unwrap())
    });

    let qa = QuantTensor::quantize(&a);
    let qb = QuantTensor::quantize(&b);
    g.bench_function("quant_matmul_128", |bench| {
        bench.iter(|| vit_tensor::quant::quant_matmul(black_box(&qa), black_box(&qb)).unwrap())
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
