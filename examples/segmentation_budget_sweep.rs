//! A real-time semantic-segmentation scenario: an autonomous-driving-style
//! perception loop whose compute budget varies with system load.
//!
//! The DRT engine receives a per-frame budget and always runs the most
//! accurate execution path that fits it, on one set of shared weights.
//!
//! ```text
//! cargo run --release --example segmentation_budget_sweep
//! ```

use vit_data::{Dataset, SceneGenerator};
use vit_drt::{BudgetTrace, DrtEngine, EarlyExitBaseline, LutConfig, TracePattern};
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small executable geometry: every inference below runs the real
    // network through the interpreter.
    let mut engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )?;
    println!(
        "engine ready: {} Pareto paths, full-path cost {:.3} ms",
        engine.lut().len(),
        engine.max_resource() * 1e3
    );

    let full = engine.max_resource();
    let scenes = SceneGenerator::new(Dataset::Ade20k, 7);
    // Load pattern: calm traffic, then a demand spike (other subsystems
    // steal compute), then recovery.
    let trace = BudgetTrace::new(
        TracePattern::Step {
            high: 1.0,
            low: 0.62,
            period: 4,
        },
        0,
    );

    let mut total_est_acc = 0.0;
    let mut misses = 0;
    let frames = 12;
    println!();
    println!("frame  budget  path (depths/fuse-ch)   est.mIoU  met?");
    for (i, budget_frac) in trace.take(frames).enumerate() {
        let scene = scenes.sample_sized(i as u64, 64, 64);
        let out = engine.infer(&scene.image, budget_frac * full)?;
        let LutConfig::SegFormer {
            depths,
            fuse_in_channels,
            ..
        } = out.config
        else {
            unreachable!("segformer engine")
        };
        println!(
            "{i:>5}  {budget_frac:>6.2}  {depths:?} / {fuse_in_channels:<6}  {:.3}     {}",
            out.norm_miou_estimate, out.met_budget
        );
        total_est_acc += out.norm_miou_estimate;
        if !out.met_budget {
            misses += 1;
        }
    }
    println!();
    println!(
        "mean estimated normalized mIoU across the trace: {:.3}; deadline misses: {misses}/{frames}",
        total_est_acc / frames as f64
    );

    // Contrast: an early-exit model under the same spike budget cannot
    // guarantee the deadline — its depth depends on the input, not the
    // budget.
    let ee = EarlyExitBaseline::typical();
    let miss_rate = ee.deadline_miss_rate(0.62, 5000, 3);
    println!(
        "input-dependent early exit at the spike budget (0.62x): {:.1}% deadline misses",
        miss_rate * 100.0
    );
    Ok(())
}
