/root/repo/target/release/deps/engine-c264244c02393c81.d: crates/bench/benches/engine.rs Cargo.toml

/root/repo/target/release/deps/libengine-c264244c02393c81.rmeta: crates/bench/benches/engine.rs Cargo.toml

crates/bench/benches/engine.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
