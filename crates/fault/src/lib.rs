//! # vit-fault
//!
//! Deterministic fault injection and detection guards for the serving
//! stack.
//!
//! The paper's resilience finding (§III) is that ViT execution paths
//! degrade *gracefully* when given less compute. This crate supplies the
//! machinery to test the serving-time corollary — that a fault should
//! degrade a response, not lose it:
//!
//! * [`FaultPlan`] — a seeded, fully deterministic chaos schedule. Every
//!   decision (crash, stall, bit-flip, plan-replay failure) is a pure
//!   hash of `(seed, run, attempt)`, so a chaos run is byte-reproducible
//!   regardless of thread interleaving.
//! * [`FaultCtx`] — the per-run injection/detection scope threaded
//!   through `vit_graph::RunContext`; inert by default.
//! * [`GuardConfig`] / [`check_guard`] — NaN/Inf + magnitude output
//!   guards that catch corrupted activations before a client sees them.
//! * [`FaultError`] — the typed error surface injected faults and guard
//!   trips report through.
//!
//! Injected bit-flips use [`vit_tensor::corrupt`], which upsets the high
//! exponent bit of an activation so the corruption is always detectable
//! by a magnitude guard (silent data corruption below guard thresholds
//! is explicitly out of this fault model's scope).

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;
use vit_tensor::corrupt::{self, BitFlip};

/// splitmix64: the same coordinate-hash construction `vit_graph`'s weight
/// generator uses, reused here so fault decisions are pure functions of
/// their coordinates.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `[0, 1)` from the top 53 bits of a hash.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// Which fault a [`FaultPlan`] injects into one execution attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultKind {
    /// The worker's inference dies outright before producing a result.
    Crash,
    /// Kernels run slower by the plan's stall factor (a stuck core, a
    /// noisy neighbor); output values are unaffected.
    Stall,
    /// A transient single-event upset flips an exponent bit of one
    /// activation element mid-run.
    BitFlip,
    /// Replaying a compiled execution plan fails (a poisoned plan cache
    /// entry); only drawn under the `Plan` backend.
    PlanReplay,
}

impl FaultKind {
    /// Stable lower-snake name, used in trace event details and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Crash => "crash",
            FaultKind::Stall => "stall",
            FaultKind::BitFlip => "bit_flip",
            FaultKind::PlanReplay => "plan_replay",
        }
    }
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A seeded, fully deterministic chaos schedule.
///
/// Per `(run, attempt)` at most one fault is drawn; the rates are
/// per-attempt probabilities and must sum to at most 1. All decisions are
/// pure hashes — no RNG state, so concurrent workers drawing decisions in
/// any order reproduce the same schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Seed every decision hashes.
    pub seed: u64,
    /// Probability an attempt crashes before producing a result.
    pub crash_rate: f64,
    /// Probability an attempt suffers a transient activation bit-flip.
    pub bitflip_rate: f64,
    /// Probability an attempt's kernels stall (run slower).
    pub stall_rate: f64,
    /// Service-time multiplier of a stalled attempt (must be >= 1).
    pub stall_factor: f64,
    /// Probability a plan replay fails (only drawn under the `Plan`
    /// backend; interpreted runs skip this slice).
    pub replay_rate: f64,
}

const SALT_KIND: u64 = 0x6BF5_8476;
const SALT_NODE: u64 = 0x94D0_49BB;
const SALT_ELEM: u64 = 0x9E37_79B9;

impl FaultPlan {
    /// A plan that never injects anything (useful to enable the guard
    /// path without chaos).
    pub fn none(seed: u64) -> Self {
        FaultPlan {
            seed,
            crash_rate: 0.0,
            bitflip_rate: 0.0,
            stall_rate: 0.0,
            stall_factor: 1.0,
            replay_rate: 0.0,
        }
    }

    /// Whether this plan can inject anything at all.
    pub fn is_active(&self) -> bool {
        self.crash_rate > 0.0
            || self.bitflip_rate > 0.0
            || self.stall_rate > 0.0
            || self.replay_rate > 0.0
    }

    fn draw(&self, run: u64, attempt: u32, salt: u64) -> u64 {
        splitmix64(
            self.seed
                ^ splitmix64(run.wrapping_mul(0xA076_1D64_78BD_642F))
                ^ splitmix64(u64::from(attempt).wrapping_mul(0xE703_7ED1_A0B4_28DB))
                ^ salt,
        )
    }

    /// The fault injected into execution attempt `attempt` of request
    /// `run`, if any. Pure in its arguments.
    pub fn decide(&self, run: u64, attempt: u32) -> Option<FaultKind> {
        let u = unit(self.draw(run, attempt, SALT_KIND));
        let mut edge = self.crash_rate;
        if u < edge {
            return Some(FaultKind::Crash);
        }
        edge += self.bitflip_rate;
        if u < edge {
            return Some(FaultKind::BitFlip);
        }
        edge += self.stall_rate;
        if u < edge {
            return Some(FaultKind::Stall);
        }
        edge += self.replay_rate;
        if u < edge {
            return Some(FaultKind::PlanReplay);
        }
        None
    }

    /// Which of `n_nodes` graph nodes the bit-flip strikes (meaningful
    /// only when [`FaultPlan::decide`] returned [`FaultKind::BitFlip`]).
    pub fn flip_node(&self, run: u64, attempt: u32, n_nodes: usize) -> usize {
        if n_nodes == 0 {
            return 0;
        }
        (self.draw(run, attempt, SALT_NODE) % n_nodes as u64) as usize
    }

    /// The element-scan start position of the bit-flip within the struck
    /// activation.
    pub fn flip_start(&self, run: u64, attempt: u32, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (self.draw(run, attempt, SALT_ELEM) % len as u64) as usize
    }
}

/// Output-guard thresholds: a tensor trips the guard when any element is
/// non-finite or exceeds the magnitude limit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardConfig {
    /// Largest plausible activation/logit magnitude. Anything above this
    /// is treated as corruption. Exponent-bit upsets of in-range values
    /// land around `1e30`–`inf`, far above any real logit.
    pub magnitude_limit: f32,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            magnitude_limit: 1e6,
        }
    }
}

/// Why a guard tripped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum GuardTripKind {
    /// NaN or infinity.
    NonFinite,
    /// Finite but beyond the magnitude limit.
    Magnitude,
}

impl GuardTripKind {
    /// Stable lower-snake name.
    pub fn name(self) -> &'static str {
        match self {
            GuardTripKind::NonFinite => "non_finite",
            GuardTripKind::Magnitude => "magnitude",
        }
    }
}

/// One guard violation: the first offending element of a checked tensor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GuardTrip {
    /// Why it tripped.
    pub kind: GuardTripKind,
    /// Flat element index of the first violation.
    pub index: usize,
    /// The offending value.
    pub value: f32,
    /// The magnitude limit in force.
    pub limit: f32,
}

impl fmt::Display for GuardTrip {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} at element {} (value {}, limit {})",
            self.kind.name(),
            self.index,
            self.value,
            self.limit
        )
    }
}

/// Scans `data` against `cfg`, returning the first violation.
///
/// # Errors
///
/// Returns the first [`GuardTrip`] found (non-finite or over-magnitude
/// element).
pub fn check_guard(data: &[f32], cfg: GuardConfig) -> Result<(), GuardTrip> {
    for (i, &v) in data.iter().enumerate() {
        if !v.is_finite() {
            return Err(GuardTrip {
                kind: GuardTripKind::NonFinite,
                index: i,
                value: v,
                limit: cfg.magnitude_limit,
            });
        }
        if v.abs() > cfg.magnitude_limit {
            return Err(GuardTrip {
                kind: GuardTripKind::Magnitude,
                index: i,
                value: v,
                limit: cfg.magnitude_limit,
            });
        }
    }
    Ok(())
}

/// Error surfaced by injected faults and detection guards.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultError {
    /// An injected crash killed the attempt before it produced a result.
    InjectedCrash {
        /// The request/run the fault plan scheduled the crash for.
        run: u64,
    },
    /// An injected plan-replay failure (poisoned plan) aborted the
    /// attempt; callers should fall back to the interpreter backend.
    InjectedReplayFailure {
        /// The request/run the fault plan scheduled the failure for.
        run: u64,
    },
    /// A detection guard caught a corrupted tensor.
    GuardTripped {
        /// Where the guard fired (node name, `logits`, …).
        site: String,
        /// The violation.
        trip: GuardTrip,
    },
}

impl FaultError {
    /// The injected fault kind this error corresponds to, for accounting.
    /// Guard trips map to [`FaultKind::BitFlip`] (the only corruption this
    /// fault model injects).
    pub fn kind(&self) -> FaultKind {
        match self {
            FaultError::InjectedCrash { .. } => FaultKind::Crash,
            FaultError::InjectedReplayFailure { .. } => FaultKind::PlanReplay,
            FaultError::GuardTripped { .. } => FaultKind::BitFlip,
        }
    }
}

impl fmt::Display for FaultError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultError::InjectedCrash { run } => {
                write!(f, "injected crash killed run {run}")
            }
            FaultError::InjectedReplayFailure { run } => {
                write!(f, "injected plan-replay failure aborted run {run}")
            }
            FaultError::GuardTripped { site, trip } => {
                write!(f, "output guard tripped at `{site}`: {trip}")
            }
        }
    }
}

impl std::error::Error for FaultError {}

/// The armed half of a [`FaultCtx`]: one plan applied to one execution
/// attempt of one request.
#[derive(Debug)]
struct FaultScope {
    plan: FaultPlan,
    run: u64,
    attempt: u32,
}

/// Per-run fault injection and detection scope, threaded through
/// `vit_graph::RunContext`.
///
/// The default context is fully inert: no injection, no guard scans, zero
/// cost on the hot path beyond two `Option` checks. Serving enables the
/// output guard permanently and arms injection only for chaos runs.
/// Cloning is cheap (the scope is shared).
#[derive(Debug, Clone, Default)]
pub struct FaultCtx {
    scope: Option<Arc<FaultScope>>,
    guard: Option<GuardConfig>,
}

impl FaultCtx {
    /// Inert context — identical to `default()`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enables the NaN/Inf + magnitude output guard on engine results.
    #[must_use]
    pub fn with_guard(mut self, guard: GuardConfig) -> Self {
        self.guard = Some(guard);
        self
    }

    /// Arms fault injection for execution attempt `attempt` of request
    /// `run` under `plan`.
    #[must_use]
    pub fn armed(mut self, plan: FaultPlan, run: u64, attempt: u32) -> Self {
        self.scope = Some(Arc::new(FaultScope { plan, run, attempt }));
        self
    }

    /// Whether fault injection is armed (a plan is attached).
    pub fn is_armed(&self) -> bool {
        self.scope.is_some()
    }

    /// The request/run injection is armed for (0 when unarmed).
    pub fn run(&self) -> u64 {
        self.scope.as_ref().map_or(0, |s| s.run)
    }

    /// The execution attempt injection is armed for (0 when unarmed).
    pub fn attempt(&self) -> u32 {
        self.scope.as_ref().map_or(0, |s| s.attempt)
    }

    /// The guard applied to final engine outputs, when enabled.
    pub fn output_guard(&self) -> Option<GuardConfig> {
        self.guard
    }

    /// The guard applied to *every node output* — only when injection is
    /// armed, so corruption is caught at its source before normalization
    /// layers can mask it. Unarmed runs pay only the final-output scan.
    /// An armed context without an explicit guard uses the default one, so
    /// injected corruption can never outrun detection.
    pub fn node_guard(&self) -> Option<GuardConfig> {
        if self.is_armed() {
            Some(self.guard.unwrap_or_default())
        } else {
            None
        }
    }

    /// The fault injected into this attempt, if any.
    pub fn injected(&self) -> Option<FaultKind> {
        let s = self.scope.as_ref()?;
        s.plan.decide(s.run, s.attempt)
    }

    /// The injected failure this attempt must die with, if any:
    /// [`FaultKind::Crash`] always, [`FaultKind::PlanReplay`] only when
    /// the attempt runs on the plan backend.
    pub fn injected_failure(&self, plan_backend: bool) -> Option<FaultError> {
        let s = self.scope.as_ref()?;
        match s.plan.decide(s.run, s.attempt)? {
            FaultKind::Crash => Some(FaultError::InjectedCrash { run: s.run }),
            FaultKind::PlanReplay if plan_backend => {
                Some(FaultError::InjectedReplayFailure { run: s.run })
            }
            _ => None,
        }
    }

    /// The kernel-slowdown multiplier of this attempt (`> 1` only when a
    /// stall fault was drawn).
    pub fn stall_multiplier(&self) -> Option<f64> {
        let s = self.scope.as_ref()?;
        match s.plan.decide(s.run, s.attempt)? {
            FaultKind::Stall => Some(s.plan.stall_factor.max(1.0)),
            _ => None,
        }
    }

    /// The graph node whose output this attempt's bit-flip strikes, if a
    /// bit-flip was drawn. The executor compares node indices against
    /// this, so the injection point is independent of scheduling order.
    pub fn flip_node(&self, n_nodes: usize) -> Option<usize> {
        let s = self.scope.as_ref()?;
        match s.plan.decide(s.run, s.attempt)? {
            FaultKind::BitFlip => Some(s.plan.flip_node(s.run, s.attempt, n_nodes)),
            _ => None,
        }
    }

    /// Corrupts `data` in place with this attempt's deterministic
    /// exponent-bit flip (see [`vit_tensor::corrupt::flip_detectable`]).
    /// Returns what changed, or `None` when the context is unarmed or no
    /// element could produce a guard-detectable flip (the upset "misses").
    pub fn corrupt(&self, data: &mut [f32]) -> Option<BitFlip> {
        let s = self.scope.as_ref()?;
        let start = s.plan.flip_start(s.run, s.attempt, data.len());
        let limit = self.guard.unwrap_or_default().magnitude_limit;
        corrupt::flip_detectable(data, start, limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chaotic() -> FaultPlan {
        FaultPlan {
            seed: 7,
            crash_rate: 0.2,
            bitflip_rate: 0.2,
            stall_rate: 0.2,
            stall_factor: 4.0,
            replay_rate: 0.2,
        }
    }

    #[test]
    fn decisions_are_deterministic_and_cover_all_kinds() {
        let p = chaotic();
        let mut seen = std::collections::HashSet::new();
        for run in 0..200 {
            let a = p.decide(run, 0);
            let b = p.decide(run, 0);
            assert_eq!(a, b, "decision must be pure in (seed, run, attempt)");
            if let Some(k) = a {
                seen.insert(k);
            }
        }
        for k in [
            FaultKind::Crash,
            FaultKind::Stall,
            FaultKind::BitFlip,
            FaultKind::PlanReplay,
        ] {
            assert!(seen.contains(&k), "{k} never drawn at 20% over 200 runs");
        }
    }

    #[test]
    fn attempts_redraw_independently() {
        let p = chaotic();
        let differs = (0..100).any(|run| p.decide(run, 0) != p.decide(run, 1));
        assert!(differs, "retry attempts must not inherit the first draw");
    }

    #[test]
    fn rates_roughly_honored() {
        let p = FaultPlan {
            bitflip_rate: 0.5,
            crash_rate: 0.0,
            stall_rate: 0.0,
            replay_rate: 0.0,
            ..FaultPlan::none(3)
        };
        let hits = (0..1000).filter(|&r| p.decide(r, 0).is_some()).count();
        assert!((400..600).contains(&hits), "got {hits}/1000 at rate 0.5");
    }

    #[test]
    fn none_plan_is_inert() {
        let p = FaultPlan::none(9);
        assert!(!p.is_active());
        assert!((0..500).all(|r| p.decide(r, 0).is_none()));
    }

    #[test]
    fn guard_catches_nan_inf_and_magnitude() {
        let cfg = GuardConfig::default();
        assert!(check_guard(&[0.0, 1.0, -3.5], cfg).is_ok());
        let nan = check_guard(&[0.0, f32::NAN], cfg).unwrap_err();
        assert_eq!(nan.kind, GuardTripKind::NonFinite);
        assert_eq!(nan.index, 1);
        let inf = check_guard(&[f32::INFINITY], cfg).unwrap_err();
        assert_eq!(inf.kind, GuardTripKind::NonFinite);
        let big = check_guard(&[1.0, -2e7], cfg).unwrap_err();
        assert_eq!(big.kind, GuardTripKind::Magnitude);
        assert_eq!(big.index, 1);
    }

    #[test]
    fn armed_ctx_corruption_is_always_guard_detectable() {
        let plan = FaultPlan {
            bitflip_rate: 1.0,
            ..FaultPlan::none(11)
        };
        for run in 0..50 {
            let ctx = FaultCtx::new()
                .with_guard(GuardConfig::default())
                .armed(plan, run, 0);
            let mut data = vec![0.25f32; 64];
            data[13] = -1.75;
            let flip = ctx.corrupt(&mut data).expect("plausible values flip");
            assert!(
                check_guard(&data, GuardConfig::default()).is_err(),
                "run {run}: corruption at index {} must trip the guard",
                flip.index
            );
        }
    }

    #[test]
    fn inert_ctx_does_nothing() {
        let ctx = FaultCtx::new();
        assert!(!ctx.is_armed());
        assert!(ctx.injected().is_none());
        assert!(ctx.injected_failure(true).is_none());
        assert!(ctx.stall_multiplier().is_none());
        assert!(ctx.flip_node(100).is_none());
        assert!(ctx.node_guard().is_none());
        let mut data = vec![1.0f32; 8];
        assert!(ctx.corrupt(&mut data).is_none());
        assert_eq!(data, vec![1.0f32; 8]);
    }

    #[test]
    fn fault_error_display_is_stable() {
        assert_eq!(
            FaultError::InjectedCrash { run: 3 }.to_string(),
            "injected crash killed run 3"
        );
        assert_eq!(
            FaultError::InjectedReplayFailure { run: 4 }.to_string(),
            "injected plan-replay failure aborted run 4"
        );
        let e = FaultError::GuardTripped {
            site: "logits".into(),
            trip: GuardTrip {
                kind: GuardTripKind::Magnitude,
                index: 7,
                value: 2e7,
                limit: 1e6,
            },
        };
        assert_eq!(
            e.to_string(),
            "output guard tripped at `logits`: magnitude at element 7 (value 20000000, limit 1000000)"
        );
        assert_eq!(e.kind(), FaultKind::BitFlip);
    }
}
