/root/repo/target/release/deps/proptest-dbf0c9ca083a6035.d: vendor/proptest/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libproptest-dbf0c9ca083a6035.rmeta: vendor/proptest/src/lib.rs Cargo.toml

vendor/proptest/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
