/root/repo/target/release/deps/serving-9cad07d67b37632c.d: crates/serve/../../tests/serving.rs

/root/repo/target/release/deps/serving-9cad07d67b37632c: crates/serve/../../tests/serving.rs

crates/serve/../../tests/serving.rs:
