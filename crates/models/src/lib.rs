//! # vit-models
//!
//! Architecture builders for every model the paper evaluates:
//!
//! * [`segformer`] — SegFormer B0-B5 (MiT encoder + all-MLP decoder) with
//!   dynamic execution-path configuration (Table II),
//! * [`swin`] — Swin Tiny/Small/Base + UPerNet with dynamic configuration
//!   (Table III),
//! * [`resnet`] — ResNet-50 and the Once-For-All subnet space (Figure 16),
//! * [`detr`] — DETR and Deformable DETR detection pipelines (Figure 1),
//! * [`vit`] — convolution-free ViT and BERT for the paper's §II contrast.
//!
//! Builders emit [`vit_graph::Graph`]s whose node names are stable across
//! dynamic configurations, so the executor's slice-consistent synthetic
//! weights are literally shared between the full and pruned models.
//!
//! # Examples
//!
//! ```
//! use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
//!
//! # fn main() -> Result<(), vit_models::ModelError> {
//! let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2()))?;
//! println!("SegFormer-B2: {:.1} GFLOPs", g.total_flops() as f64 / 1e9);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod detr;
mod error;
pub mod resnet;
pub mod segformer;
pub mod swin;
pub mod vit;

pub use detr::{backbone_transformer_split, build_deformable_detr, build_detr, DetrConfig};
pub use error::{ModelError, Result};
pub use resnet::{build_resnet, ofa_family, OfaSubnet, ResNetConfig, ResNetGraph};
pub use segformer::{build_segformer, SegFormerConfig, SegFormerDynamic, SegFormerVariant};
pub use swin::{build_swin_upernet, SwinConfig, SwinDynamic, SwinVariant};
pub use vit::{bert_base, build_bert, build_vit, EncoderStackConfig, VitConfig};
