/root/repo/target/release/deps/serde-857cd778c9194a19.d: vendor/serde/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libserde-857cd778c9194a19.rmeta: vendor/serde/src/lib.rs Cargo.toml

vendor/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
