/root/repo/target/release/deps/serde_derive-df551f6968b9c555.d: vendor/serde_derive/src/lib.rs

/root/repo/target/release/deps/serde_derive-df551f6968b9c555: vendor/serde_derive/src/lib.rs

vendor/serde_derive/src/lib.rs:
