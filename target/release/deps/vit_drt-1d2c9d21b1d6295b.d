/root/repo/target/release/deps/vit_drt-1d2c9d21b1d6295b.d: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs Cargo.toml

/root/repo/target/release/deps/libvit_drt-1d2c9d21b1d6295b.rmeta: crates/core/src/lib.rs crates/core/src/baselines.rs crates/core/src/budget.rs crates/core/src/engine.rs crates/core/src/json.rs crates/core/src/lut.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/baselines.rs:
crates/core/src/budget.rs:
crates/core/src/engine.rs:
crates/core/src/json.rs:
crates/core/src/lut.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
