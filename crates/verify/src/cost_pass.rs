//! Pass 2 — cost conservation.
//!
//! The DRT premise is that *analytical* cost predictions can be trusted at
//! serve time, so the three independent cost paths in the workspace —
//! per-node re-derivation from [`vit_graph::Op`], the graph's own
//! aggregations, and the profiler's summaries — must agree **exactly**
//! (all integer FLOP/parameter/byte arithmetic; no tolerance).

use crate::diag::{Code, Diagnostic, Span};
use vit_graph::Graph;
use vit_profiler::{node_io_bytes, Profile};

/// Runs the cost-conservation pass over a graph and a profile of it (use
/// [`Profile::flops_only`] for a freshly profiled graph, or a deserialized
/// profile artifact to validate storage).
pub fn verify_costs(graph: &Graph, profile: &Profile) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if profile.layers.len() != graph.len() {
        diags.push(
            Diagnostic::new(
                Code::CostMismatch,
                Span::Global,
                format!(
                    "profile has {} rows for a {}-node graph",
                    profile.layers.len(),
                    graph.len()
                ),
            )
            .with_help("the profile was taken from a different execution path"),
        );
        return diags; // Row-wise diffs below would misalign.
    }

    // Per-node: the profile row must match a fresh re-derivation.
    for (i, (id, node)) in graph.iter().enumerate() {
        let row = &profile.layers[i];
        let mut mismatch = Vec::new();
        if row.name != node.name {
            mismatch.push(format!("name `{}` vs `{}`", row.name, node.name));
        }
        if row.flops != node.flops(graph) {
            mismatch.push(format!("flops {} vs {}", row.flops, node.flops(graph)));
        }
        if row.params != node.params(graph) {
            mismatch.push(format!("params {} vs {}", row.params, node.params(graph)));
        }
        if row.bytes != node_io_bytes(graph, node) {
            mismatch.push(format!(
                "bytes {} vs {}",
                row.bytes,
                node_io_bytes(graph, node)
            ));
        }
        if row.class != node.op.class() || row.role != node.role {
            mismatch.push(format!(
                "class/role {:?}/{:?} vs {:?}/{:?}",
                row.class,
                row.role,
                node.op.class(),
                node.role
            ));
        }
        if !mismatch.is_empty() {
            diags.push(Diagnostic::new(
                Code::CostMismatch,
                Span::Node {
                    index: id.index(),
                    name: node.name.clone(),
                },
                format!(
                    "profile row disagrees with re-derivation: {}",
                    mismatch.join("; ")
                ),
            ));
        }
    }

    // Totals: graph aggregation, profile aggregation, and row sums must be
    // one number.
    let row_flops: u64 = profile.layers.iter().map(|l| l.flops).sum();
    for (what, a, b) in [
        (
            "total flops (graph vs profile)",
            graph.total_flops(),
            profile.total_flops(),
        ),
        (
            "total flops (profile vs row sum)",
            profile.total_flops(),
            row_flops,
        ),
        (
            "total params (graph vs row sum)",
            graph.total_params(),
            profile.layers.iter().map(|l| l.params).sum(),
        ),
    ] {
        if a != b {
            diags.push(Diagnostic::new(
                Code::CostMismatch,
                Span::Global,
                format!("{what}: {a} != {b}"),
            ));
        }
    }

    // Partitions: per-class sums must tile the total exactly, and each
    // class total must equal the graph's own per-class aggregation.
    let by_class = profile.by_class();
    let class_sum: u64 = by_class.values().map(|s| s.flops).sum();
    if class_sum != profile.total_flops() {
        diags.push(Diagnostic::new(
            Code::CostMismatch,
            Span::Global,
            format!(
                "per-class flops sum {class_sum} does not tile the total {}",
                profile.total_flops()
            ),
        ));
    }
    for (class, summary) in &by_class {
        let graph_side = graph.flops_by_class(*class);
        if summary.flops != graph_side {
            diags.push(Diagnostic::new(
                Code::CostMismatch,
                Span::Global,
                format!(
                    "class {class}: profile {} vs graph {graph_side} flops",
                    summary.flops
                ),
            ));
        }
    }

    // The encoder/decoder split (the paper's headline figure) must agree.
    let decoder_rows: u64 = profile
        .layers
        .iter()
        .filter(|l| l.role.is_decoder())
        .map(|l| l.flops)
        .sum();
    if decoder_rows != graph.decoder_flops() {
        diags.push(Diagnostic::new(
            Code::CostMismatch,
            Span::Global,
            format!(
                "decoder flops: profile rows {decoder_rows} vs graph {}",
                graph.decoder_flops()
            ),
        ));
    }
    diags
}
