//! # vit-accel
//!
//! A MAGNet-style deep-learning accelerator model (paper §V): a PE array of
//! vector MACs with an output-stationary local-weight-stationary (OS-LWS)
//! dataflow, a four-level memory hierarchy (vector-MAC register files, per-PE
//! weight/activation SRAMs, a global buffer, DRAM), INT8 datapath, and a
//! constant budget of 16384 parallel MACs traded between vector width,
//! vector-MAC count, and PE count.
//!
//! [`simulate`] maps each graph node onto the Listing-1 loop nest and
//! produces per-layer cycles, utilization, DRAM traffic and energy;
//! [`AccelConfig::pe_array_area_mm2`] provides the 5nm area model calibrated
//! on Table IV; [`dse`] explores the design space (Figure 14).
//!
//! # Examples
//!
//! ```
//! use vit_accel::{simulate, AccelConfig, SimOptions};
//! use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
//!
//! # fn main() -> Result<(), vit_models::ModelError> {
//! let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2()))?;
//! let report = simulate(&g, &AccelConfig::accelerator_a(), &SimOptions::default());
//! println!("{} cycles = {:.2} ms", report.total_cycles(), report.total_time_s() * 1e3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod dse;
pub mod sim;

pub use config::{AccelConfig, TechEnergy, TOTAL_PARALLEL_MACS};
pub use dse::{design_space, DesignPoint};
pub use sim::{node_contractions, simulate, AccelReport, Contraction, LayerStats, SimOptions};
