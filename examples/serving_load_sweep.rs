//! Serving a Vision Transformer under deadlines, end to end.
//!
//! Builds a SegFormer-B0 DRT engine, calibrates wall-clock seconds per LUT
//! resource unit on this machine, then drives a real threaded [`Server`]
//! (4 workers over one shared engine core) with an open-loop request
//! stream whose deadlines range from tight to loose. Finally it runs the
//! deterministic virtual-time simulator over an offered-load sweep to show
//! where deadline-aware serving beats a static full-model server.
//!
//! ```text
//! cargo run --release --example serving_load_sweep
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};
use vit_bench::loadgen;
use vit_drt::DrtEngine;
use vit_models::SegFormerVariant;
use vit_resilience::{ResourceKind, Workload};
use vit_serve::{
    simulate, Calibration, InferenceRequest, SchedulePolicy, Server, ServerConfig, SimConfig,
};
use vit_tensor::Tensor;

fn main() {
    // 1. One shared engine core: the LUT plus a concurrent graph cache.
    let engine = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("engine builds");
    let core = engine.core().clone();
    println!(
        "engine: {} Pareto execution paths (cheapest {:.2}x full cost)",
        core.lut().len(),
        core.min_resource() / core.max_resource()
    );

    // 2. Calibrate: how many wall seconds one LUT resource unit costs here.
    let calibration = Calibration::measure(&core).expect("calibration inference runs");
    let full_secs = calibration.secs(core.max_resource());
    println!(
        "calibration: full model ~{:.1} ms wall on this machine",
        full_secs * 1e3
    );

    // 3. A real threaded server: EDF queue + admission control. Inference
    // here is CPU-bound, so size the pool to the machine — extra workers
    // beyond the core count would only contend and inflate service times
    // past what the (solo) calibration predicts.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1);
    let config = ServerConfig::builder()
        .workers(workers)
        .queue_depth(32)
        .resource_kind(ResourceKind::GpuTime)
        .policy(SchedulePolicy::DrtDynamic)
        .build()
        .expect("a positive worker count and queue depth validate");
    let server = Server::start(Arc::clone(&core), calibration, config);

    // Open loop at ~0.7x the pool's full-model capacity, cycling tight /
    // medium / loose deadlines.
    let image = Tensor::rand_uniform(&[1, 3, 64, 64], 0.0, 1.0, 7);
    let gap = full_secs / workers as f64 / 0.7;
    // A third of the requests get a deadline *below* the full model's
    // cost — only a cheaper LUT path can meet those.
    let slacks = [0.8, 1.5, 8.0]; // x full-model wall time
    let total = 40;
    for i in 0..total {
        let slack = slacks[i % slacks.len()] * full_secs;
        let request = InferenceRequest::new(
            image.clone(),
            Instant::now() + Duration::from_secs_f64(slack),
            ResourceKind::GpuTime,
        );
        // Admission tells us up front whether the request got a ticket or
        // was shed (queue full / slack below the cheapest path).
        let _admission = server.submit(request).expect("resource kind matches");
        std::thread::sleep(Duration::from_secs_f64(gap));
    }
    let m = server.shutdown();
    println!();
    println!("threaded server ({workers} workers), {total} requests at ~0.7x capacity:");
    println!(
        "  completed {} | shed {} | deadline misses {} | p99 {:.1} ms | delivered accuracy {:.3}",
        m.completed,
        m.shed(),
        m.deadline_misses,
        m.p99_latency * 1e3,
        m.mean_delivered_accuracy
    );
    for (config, n) in &m.config_histogram {
        println!("  {n:4}x {config:?}");
    }

    // 4. The deterministic sweep: where does deadline-awareness pay?
    println!();
    println!("virtual-time load sweep (Poisson + bursts, seed 42):");
    println!("  load   drt miss   static miss   drt acc   static acc");
    let full = core.max_resource();
    for load_x in [0.5, 1.0, 2.0, 3.0] {
        let arrivals = loadgen::poisson_with_bursts(
            load_x * 4.0 / full,
            400.0 * full,
            2.0 * full,
            80.0 * full,
            12,
            42,
        );
        let cfg = |policy| SimConfig::new(4, 16, policy, 1.0);
        let drt = simulate(&core, &cfg(SchedulePolicy::DrtDynamic), &arrivals);
        let stat = simulate(&core, &cfg(SchedulePolicy::static_full()), &arrivals);
        println!(
            "  {load_x:.1}x  {:8.1}%  {:11.1}%  {:8.3}  {:10.3}",
            drt.deadline_miss_rate * 100.0,
            stat.deadline_miss_rate * 100.0,
            drt.mean_delivered_accuracy,
            stat.mean_delivered_accuracy
        );
    }
}
