//! Element-wise activations and the softmax used inside attention.

use crate::error::{invalid_argument, Result};
use crate::tensor::Tensor;

/// Scalar relu. The single definition shared by [`relu`] and the fused
/// kernel epilogues, so a fused `conv+relu` is bit-identical to the
/// two-pass form by construction.
#[inline]
pub(crate) fn relu_scalar(x: f32) -> f32 {
    if x < 0.0 {
        0.0
    } else {
        x
    }
}

/// Scalar gelu (tanh approximation), shared by [`gelu`] and the fused
/// kernel epilogues.
#[inline]
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const SQRT_2_OVER_PI: f32 = 0.797_884_6;
    let inner = SQRT_2_OVER_PI * (x + 0.044_715 * x * x * x);
    0.5 * x * (1.0 + inner.tanh())
}

/// Rectified linear unit, applied element-wise.
///
/// # Examples
///
/// ```
/// use vit_tensor::{Tensor, ops::relu};
/// let t = Tensor::from_vec(vec![-1.0, 0.5], &[2]).unwrap();
/// assert_eq!(relu(&t).data(), &[0.0, 0.5]);
/// ```
pub fn relu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.data_mut() {
        *v = relu_scalar(*v);
    }
    out
}

/// Gaussian error linear unit (tanh approximation), applied element-wise.
///
/// This is the activation used in transformer feed-forward networks.
pub fn gelu(input: &Tensor) -> Tensor {
    let mut out = input.clone();
    for v in out.data_mut() {
        *v = gelu_scalar(*v);
    }
    out
}

/// Numerically-stable softmax over the last dimension.
///
/// # Errors
///
/// Returns [`crate::TensorError::InvalidArgument`] when the tensor has no
/// dimensions or the last dimension is zero.
pub fn softmax_last_dim(input: &Tensor) -> Result<Tensor> {
    let last = *input
        .shape()
        .last()
        .ok_or_else(|| invalid_argument("softmax", "tensor has no dimensions".to_string()))?;
    if last == 0 {
        return Err(invalid_argument(
            "softmax",
            "last dimension is zero".to_string(),
        ));
    }
    let mut out = input.clone();
    let rows = out.numel() / last;
    let data = out.data_mut();
    for r in 0..rows {
        let row = &mut data[r * last..(r + 1) * last];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        for v in row.iter_mut() {
            *v /= sum;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives_only() {
        let t = Tensor::from_vec(vec![-3.0, -0.0, 0.0, 2.5], &[4]).unwrap();
        assert_eq!(relu(&t).data(), &[0.0, 0.0, 0.0, 2.5]);
    }

    #[test]
    fn gelu_known_values() {
        let t = Tensor::from_vec(vec![0.0, 1.0, -1.0, 3.0], &[4]).unwrap();
        let g = gelu(&t);
        assert!((g.data()[0] - 0.0).abs() < 1e-6);
        assert!((g.data()[1] - 0.8412).abs() < 1e-3);
        assert!((g.data()[2] - (-0.1588)).abs() < 1e-3);
        // Far in the positive tail, gelu(x) ~= x.
        assert!((g.data()[3] - 3.0).abs() < 1e-2);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::rand_uniform(&[3, 7], -5.0, 5.0, 9);
        let s = softmax_last_dim(&t).unwrap();
        for r in 0..3 {
            let sum: f32 = s.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let t = Tensor::from_vec(vec![1000.0, 1000.0, 999.0], &[3]).unwrap();
        let s = softmax_last_dim(&t).unwrap();
        assert!(s.data().iter().all(|v| v.is_finite()));
        assert!(s.data()[0] > s.data()[2]);
    }

    #[test]
    fn softmax_preserves_order() {
        let t = Tensor::from_vec(vec![0.1, 2.0, -1.0, 0.5], &[1, 4]).unwrap();
        let s = softmax_last_dim(&t).unwrap();
        let d = s.data();
        assert!(d[1] > d[3] && d[3] > d[0] && d[0] > d[2]);
    }

    #[test]
    fn softmax_rejects_zero_dim() {
        let t = Tensor::zeros(&[3, 0]);
        assert!(softmax_last_dim(&t).is_err());
    }
}
