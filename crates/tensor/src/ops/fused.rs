//! Fused epilogues and pre-packed weight kernels.
//!
//! These are the tensor-level building blocks of compiled execution plans
//! (`vit-plan`): a producing kernel (convolution, linear) applies an
//! elementwise [`Epilogue`] at each element's *final store*, and a
//! [`PackedConv2d`]/[`PackedLinear`] owns its weights in one contiguous
//! kernel-friendly buffer so replaying a plan touches no weight caches.
//! [`PackedLinear`] is `vit-plan`'s pack hook for the GEMM micro-kernel:
//! its weight is laid out in [`crate::ops::pack::PackedB`] column panels
//! **once at plan-compile time**, so plan replay never re-packs.
//!
//! Bit-identity: the epilogue scalar functions are the *same definitions*
//! the standalone [`crate::ops::relu`]/[`crate::ops::gelu`] passes use,
//! and `Epilogue::None.apply(x)` returns `x` unchanged, so a fused
//! `conv → relu` equals the two-pass result bit for bit — each element is
//! computed once as `ep.apply(acc + bias)` in the same operation order as
//! the unfused kernel. Which *tier* a packed kernel claims against the
//! reference oracle is a separate contract: see
//! [`PackedConv2d::reassociates`] and [`crate::ops::reference`].

use crate::error::{invalid_shape, shape_mismatch, Result};
use crate::ops::activation::{gelu_scalar, relu_scalar};
use crate::ops::conv::{conv2d_rows, ConvGeom};
use crate::ops::pack::{gemm_rows, GemmBias, PackedB};
use crate::ops::Conv2dParams;
use crate::par::ExecCtx;
use crate::tensor::Tensor;

/// An elementwise function fused into a producing kernel's output store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Epilogue {
    /// Store the value unchanged.
    #[default]
    None,
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
}

impl Epilogue {
    /// Applies the epilogue to one scalar.
    #[inline]
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Epilogue::None => x,
            Epilogue::Relu => relu_scalar(x),
            Epilogue::Gelu => gelu_scalar(x),
        }
    }
}

/// A 2-D convolution with weights (and optional bias) packed into one
/// contiguous buffer at plan time, plus a fused [`Epilogue`].
///
/// Layout: weight `[k, c/groups, r, s]` row-major, immediately followed by
/// the bias `[k]` when present. Row-major weight is already the layout the
/// im2col GEMM consumes as its left operand, so no further packing is
/// needed here.
#[derive(Debug, Clone)]
pub struct PackedConv2d {
    data: Box<[f32]>,
    k: usize,
    c_per_g: usize,
    r: usize,
    s: usize,
    has_bias: bool,
    params: Conv2dParams,
    epilogue: Epilogue,
}

impl PackedConv2d {
    /// Packs `weight` (`[k, c/groups, r, s]`) and optional `bias` (`[k]`).
    ///
    /// # Errors
    ///
    /// Returns an error when the weight is not rank 4 or the bias length
    /// disagrees with the weight's output-channel count.
    pub fn pack(
        weight: &Tensor,
        bias: Option<&Tensor>,
        params: Conv2dParams,
        epilogue: Epilogue,
    ) -> Result<Self> {
        if weight.rank() != 4 {
            return Err(invalid_shape(
                "packed_conv2d",
                format!("weight must be rank 4, got {:?}", weight.shape()),
            ));
        }
        let (k, c_per_g, r, s) = (
            weight.shape()[0],
            weight.shape()[1],
            weight.shape()[2],
            weight.shape()[3],
        );
        if let Some(b) = bias {
            if b.numel() != k {
                return Err(shape_mismatch(
                    "packed_conv2d",
                    format!("bias of {k} elements"),
                    format!("{:?}", b.shape()),
                ));
            }
        }
        let mut data = Vec::with_capacity(weight.numel() + bias.map_or(0, Tensor::numel));
        data.extend_from_slice(weight.data());
        if let Some(b) = bias {
            data.extend_from_slice(b.data());
        }
        Ok(PackedConv2d {
            data: data.into_boxed_slice(),
            k,
            c_per_g,
            r,
            s,
            has_bias: bias.is_some(),
            params,
            epilogue,
        })
    }

    /// Output shape `[n, k, oh, ow]` for an NCHW input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> [usize; 4] {
        let (oh, ow) = self
            .params
            .out_size(in_shape[2], in_shape[3], self.r, self.s);
        [in_shape[0], self.k, oh, ow]
    }

    /// The fused epilogue.
    pub fn epilogue(&self) -> Epilogue {
        self.epilogue
    }

    /// Whether this kernel's execution may reassociate floating-point
    /// accumulation relative to the reference oracle, i.e. whether it
    /// claims the tolerance tier instead of the exact tier. True for the
    /// im2col + packed-GEMM path (`c/groups > 1`, where padding taps
    /// become explicit `0.0` terms); false for the direct
    /// single-input-channel path, which is bit-identical to the oracle.
    pub fn reassociates(&self) -> bool {
        self.c_per_g > 1
    }

    /// Runs the convolution from `input` (NCHW, shape `in_shape`) into
    /// `out`, which must hold exactly `out_shape(in_shape)` elements.
    /// Output channel-planes are tiled across the context's thread pool
    /// and im2col scratch is drawn from its buffer pool; bit-identical at
    /// any thread count.
    pub fn run(&self, input: &[f32], in_shape: &[usize], out: &mut [f32], ctx: &ExecCtx<'_>) {
        let (n, c, h, w) = (in_shape[0], in_shape[1], in_shape[2], in_shape[3]);
        let (oh, ow) = self.params.out_size(h, w, self.r, self.s);
        debug_assert_eq!(input.len(), n * c * h * w);
        debug_assert_eq!(out.len(), n * self.k * oh * ow);
        let geom = ConvGeom {
            c,
            h,
            w,
            k: self.k,
            c_per_g: self.c_per_g,
            k_per_g: self.k / self.params.groups,
            r: self.r,
            s: self.s,
            oh,
            ow,
            p: self.params,
        };
        let wlen = self.k * self.c_per_g * self.r * self.s;
        let wd = &self.data[..wlen];
        let bd = self.has_bias.then(|| &self.data[wlen..]);
        let plane = oh * ow;
        let ep = self.epilogue;
        let bufs = ctx.bufs;
        ctx.for_each_row_chunk(out, plane, |_, start, piece| {
            conv2d_rows(input, wd, bd, piece, start / plane.max(1), geom, ep, bufs);
        });
    }
}

/// A linear layer packed for the GEMM micro-kernel at plan time, plus a
/// fused [`Epilogue`].
///
/// The weight `[out_features, in_features]` (PyTorch convention) is
/// stored as its transpose in [`PackedB`] column-panel layout — the
/// exact operand format the register-blocked kernel streams — followed
/// by the bias `[out_features]` when present. Packing happens once here;
/// replay never touches the row-major weight again.
#[derive(Debug, Clone)]
pub struct PackedLinear {
    weight: PackedB,
    bias: Option<Box<[f32]>>,
    epilogue: Epilogue,
}

impl PackedLinear {
    /// Packs `weight` (`[out_features, in_features]`) and optional `bias`.
    ///
    /// # Errors
    ///
    /// Returns an error when the weight is not rank 2 or the bias length
    /// disagrees with `out_features`.
    pub fn pack(weight: &Tensor, bias: Option<&Tensor>, epilogue: Epilogue) -> Result<Self> {
        if weight.rank() != 2 {
            return Err(invalid_shape(
                "packed_linear",
                format!("weight must be rank 2, got {:?}", weight.shape()),
            ));
        }
        let (out_features, in_features) = (weight.shape()[0], weight.shape()[1]);
        if let Some(b) = bias {
            if b.numel() != out_features {
                return Err(shape_mismatch(
                    "packed_linear",
                    format!("bias of {out_features} elements"),
                    format!("{:?}", b.shape()),
                ));
            }
        }
        Ok(PackedLinear {
            weight: PackedB::pack_transposed(weight.data(), out_features, in_features),
            bias: bias.map(|b| b.data().to_vec().into_boxed_slice()),
            epilogue,
        })
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.n()
    }

    /// The fused epilogue.
    pub fn epilogue(&self) -> Epilogue {
        self.epilogue
    }

    /// Runs the linear layer from `input` (`rows * in_features` elements)
    /// into `out` (`rows * out_features` elements). Output rows are tiled
    /// across the context's thread pool; bit-identical at any thread
    /// count.
    pub fn run(&self, input: &[f32], out: &mut [f32], ctx: &ExecCtx<'_>) {
        let (inf, outf) = (self.weight.k(), self.weight.n());
        debug_assert_eq!(input.len() % inf.max(1), 0);
        debug_assert_eq!(out.len() % outf.max(1), 0);
        let bd = self.bias.as_deref();
        let ep = self.epilogue;
        ctx.for_each_row_chunk(out, outf, |_, start, piece| {
            gemm_rows(
                input,
                inf,
                start / outf.max(1),
                self.weight.panels(),
                piece,
                bd.map_or(GemmBias::None, GemmBias::PerCol),
                ep,
            );
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{conv2d, gelu, linear, relu};

    #[test]
    fn epilogue_none_is_identity() {
        for x in [-3.5f32, -0.0, 0.0, 1.25, f32::MAX] {
            assert_eq!(Epilogue::None.apply(x).to_bits(), x.to_bits());
        }
    }

    #[test]
    fn packed_conv_matches_conv_then_activation_bitwise() {
        let x = Tensor::rand_uniform(&[1, 3, 8, 8], -1.0, 1.0, 11);
        let w = Tensor::rand_uniform(&[4, 3, 3, 3], -0.5, 0.5, 12);
        let b = Tensor::rand_uniform(&[4], -0.1, 0.1, 13);
        let p = Conv2dParams::new().stride(2).pad(1);
        for (ep, f) in [
            (Epilogue::Relu, relu as fn(&Tensor) -> Tensor),
            (Epilogue::Gelu, gelu as fn(&Tensor) -> Tensor),
        ] {
            let expect = f(&conv2d(&x, &w, Some(&b), p).unwrap());
            let packed = PackedConv2d::pack(&w, Some(&b), p, ep).unwrap();
            let oshape = packed.out_shape(x.shape());
            let mut out = vec![0.0f32; oshape.iter().product()];
            packed.run(x.data(), x.shape(), &mut out, &ExecCtx::default());
            assert_eq!(out.as_slice(), expect.data());
        }
    }

    #[test]
    fn packed_linear_matches_linear_then_relu_bitwise() {
        let x = Tensor::rand_uniform(&[5, 6], -1.0, 1.0, 21);
        let w = Tensor::rand_uniform(&[4, 6], -0.5, 0.5, 22);
        let b = Tensor::rand_uniform(&[4], -0.1, 0.1, 23);
        let expect = relu(&linear(&x, &w, Some(&b)).unwrap());
        let packed = PackedLinear::pack(&w, Some(&b), Epilogue::Relu).unwrap();
        let mut out = vec![0.0f32; 5 * 4];
        packed.run(x.data(), &mut out, &ExecCtx::default());
        assert_eq!(out.as_slice(), expect.data());
    }

    #[test]
    fn packed_kernels_are_thread_invariant() {
        let pool = crate::par::ThreadPool::new(4);
        let ctx = ExecCtx {
            pool: Some(&pool),
            bufs: None,
            sink: None,
            reference: false,
        };
        let x = Tensor::rand_uniform(&[2, 4, 6, 6], -1.0, 1.0, 31);
        let w = Tensor::rand_uniform(&[8, 4, 3, 3], -0.5, 0.5, 32);
        let packed =
            PackedConv2d::pack(&w, None, Conv2dParams::new().pad(1), Epilogue::Gelu).unwrap();
        let oshape = packed.out_shape(x.shape());
        let mut seq = vec![0.0f32; oshape.iter().product()];
        let mut par = seq.clone();
        packed.run(x.data(), x.shape(), &mut seq, &ExecCtx::default());
        packed.run(x.data(), x.shape(), &mut par, &ctx);
        assert_eq!(seq, par);
    }

    #[test]
    fn conv_reassociation_follows_geometry() {
        let w = Tensor::zeros(&[4, 3, 3, 3]);
        let packed = PackedConv2d::pack(&w, None, Conv2dParams::new(), Epilogue::None).unwrap();
        assert!(packed.reassociates(), "im2col GEMM path reassociates");
        let dw = Tensor::zeros(&[4, 1, 3, 3]);
        let packed =
            PackedConv2d::pack(&dw, None, Conv2dParams::new().groups(4), Epilogue::None).unwrap();
        assert!(!packed.reassociates(), "direct depthwise path is exact");
    }

    #[test]
    fn pack_rejects_bad_shapes() {
        let w3 = Tensor::zeros(&[2, 3, 3]);
        assert!(PackedConv2d::pack(&w3, None, Conv2dParams::new(), Epilogue::None).is_err());
        let w = Tensor::zeros(&[2, 3, 1, 1]);
        let bad_bias = Tensor::zeros(&[3]);
        assert!(
            PackedConv2d::pack(&w, Some(&bad_bias), Conv2dParams::new(), Epilogue::None).is_err()
        );
        let wl = Tensor::zeros(&[2, 3]);
        assert!(PackedLinear::pack(&wl, Some(&bad_bias), Epilogue::None).is_err());
    }
}
