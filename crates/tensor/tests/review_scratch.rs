use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;
use vit_tensor::par::ThreadPool;

// If the closure passed to `scope` panics after spawning, does the spawned
// job still run afterwards (i.e. after the scope frame has unwound)?
#[test]
fn job_outlives_panicked_scope_body() {
    let pool = ThreadPool::new(2);
    let ran_after_unwind = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&ran_after_unwind);
    let _ = catch_unwind(AssertUnwindSafe(|| {
        let local = [1u8, 2, 3]; // stands in for borrowed stack data
        pool.scope(|s| {
            s.spawn(|_| {
                std::thread::sleep(Duration::from_millis(100));
                // reads `local` — by now the scope frame has unwound
                let _ = local.len();
                flag.store(true, Ordering::SeqCst);
            });
            panic!("scope body panics after spawning");
        });
    }));
    std::thread::sleep(Duration::from_millis(300));
    assert!(
        !ran_after_unwind.load(Ordering::SeqCst),
        "job ran AFTER the scope unwound: borrowed stack data was dangling"
    );
}
