//! The threaded serving loop: weighted-fair multi-tenant dispatch queue,
//! continuous batching, worker pool over one shared [`EngineCore`].

use crate::config::ServerConfig;
use crate::fair::{CoalescePop, DispatchPushError, SharedDispatchQueue};
use crate::metrics::ServerMetrics;
use crate::policy::{admissible, budget_for};
use crate::queue::PopResult;
use crate::request::{
    FailureReason, FailureRecord, InferenceRequest, Outcome, RequestRecord, RequestTicket,
    ShedReason, ShedRecord, TenantId,
};
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use vit_drt::{EngineCore, EngineError, LutEntry};
use vit_fault::{FaultCtx, FaultError, GuardConfig};
use vit_graph::{ExecBackend, ExecOptions, ExecScratch, RunContext};
use vit_tensor::Tensor;
use vit_trace::{now_ns, EventKind, Phase as TracePhase, RecoveryAction};

/// Maps the LUT's abstract resource units onto wall-clock seconds on this
/// machine, so absolute deadlines can be converted into LUT budgets.
#[derive(Debug, Clone, Copy)]
pub struct Calibration {
    /// Measured wall seconds per LUT resource unit.
    pub secs_per_unit: f64,
}

/// Timed runs averaged by [`Calibration::measure`]; a single-run
/// measurement is far too noisy on shared CI machines.
pub const CALIBRATION_RUNS: usize = 3;

impl Calibration {
    /// Measures the machine: runs the full (most expensive) execution path
    /// once to warm its graph and weight caches, times
    /// [`CALIBRATION_RUNS`] further runs, and divides their average by the
    /// path's LUT cost.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when a calibration inference fails.
    pub fn measure(core: &Arc<EngineCore>) -> Result<Self, EngineError> {
        Self::measure_with(core, &RunContext::default())
    }

    /// [`Calibration::measure`] under an explicit [`RunContext`], so the
    /// calibration reflects the execution mode (and trace sink) the server
    /// will use.
    ///
    /// # Errors
    ///
    /// Returns [`EngineError`] when a calibration inference fails.
    pub fn measure_with(core: &Arc<EngineCore>, ctx: &RunContext) -> Result<Self, EngineError> {
        let mut scratch = ExecScratch::new();
        let (h, w) = core.image_size();
        let image = Tensor::rand_uniform(&[1, 3, h, w], 0.0, 1.0, 1);
        let full = core
            .lut()
            .entries()
            .last()
            .expect("EngineCore guarantees a non-empty LUT")
            .clone();
        core.run(&mut scratch, &image, full.clone(), true, ctx)?; // warm caches
        let resource = full.resource;
        Self::from_timed_runs(
            &mut || {
                let t0 = Instant::now();
                core.run(&mut scratch, &image, full.clone(), true, ctx)?;
                Ok(t0.elapsed().as_secs_f64())
            },
            CALIBRATION_RUNS,
            resource,
        )
    }

    /// Builds a calibration by averaging `runs` invocations of
    /// `timed_run` (each returning one measured duration in seconds) over
    /// an execution path costing `resource_units`. Split out from
    /// [`Calibration::measure`] so the averaging is unit-testable with a
    /// fake clock.
    ///
    /// # Errors
    ///
    /// Propagates the first error `timed_run` returns.
    ///
    /// # Panics
    ///
    /// Panics when `runs` is zero or `resource_units` is not positive.
    pub fn from_timed_runs<E>(
        timed_run: &mut dyn FnMut() -> Result<f64, E>,
        runs: usize,
        resource_units: f64,
    ) -> Result<Self, E> {
        assert!(runs >= 1, "calibration needs at least one timed run");
        assert!(
            resource_units > 0.0,
            "calibration path must have positive cost"
        );
        let mut total = 0.0;
        for _ in 0..runs {
            total += timed_run()?.max(0.0);
        }
        let secs = (total / runs as f64).max(1e-9);
        Ok(Calibration {
            secs_per_unit: secs / resource_units,
        })
    }

    /// A calibration from a known rate (e.g. for simulations).
    pub fn from_secs_per_unit(secs_per_unit: f64) -> Self {
        assert!(secs_per_unit > 0.0, "calibration rate must be positive");
        Calibration { secs_per_unit }
    }

    /// Seconds → LUT resource units.
    pub fn units(&self, secs: f64) -> f64 {
        secs / self.secs_per_unit
    }

    /// LUT resource units → seconds.
    pub fn secs(&self, units: f64) -> f64 {
        units * self.secs_per_unit
    }
}

/// Error from [`Server::submit`] for requests the server cannot interpret
/// (as opposed to load shedding, which is a recorded outcome, not an
/// error).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The request's resource kind does not match the server's LUT.
    WrongResourceKind {
        /// Kind the server was configured with.
        expected: vit_resilience::ResourceKind,
        /// Kind the request carried.
        got: vit_resilience::ResourceKind,
    },
    /// Every worker's circuit breaker is open: the server is refusing new
    /// work until at least one worker completes a request cleanly.
    AllWorkersUnhealthy {
        /// The server's worker count (all with open breakers).
        workers: usize,
    },
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::WrongResourceKind { expected, got } => write!(
                f,
                "request resource kind {got:?} does not match server LUT kind {expected:?}"
            ),
            SubmitError::AllWorkersUnhealthy { workers } => write!(
                f,
                "all {workers} worker circuit breakers are open; refusing new work"
            ),
        }
    }
}

impl std::error::Error for SubmitError {}

/// What [`Server::submit`] decided about a well-formed request: admitted
/// (with a correlation ticket) or shed (with the reason, also recorded in
/// the metrics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// The request was admitted and queued. The ticket reappears on the
    /// request's terminal record, so the caller can correlate completions.
    Admitted {
        /// The correlation handle for this submission.
        ticket: RequestTicket,
    },
    /// The request was shed without queueing.
    Shed(ShedReason),
}

impl Admission {
    /// Whether the request was admitted.
    pub fn is_admitted(&self) -> bool {
        matches!(self, Admission::Admitted { .. })
    }

    /// The ticket of an admitted request.
    pub fn ticket(&self) -> Option<RequestTicket> {
        match self {
            Admission::Admitted { ticket } => Some(*ticket),
            Admission::Shed(_) => None,
        }
    }
}

struct Submitted {
    image: Tensor,
    deadline: Instant,
    submitted_at: Instant,
    /// Trace-epoch stamp of the submission, for queue-wait spans. Zero
    /// when tracing is disabled (never recorded in that case).
    submitted_ns: u64,
    /// Submission sequence number — the deterministic `run` identity for
    /// fault draws, independent of which worker dispatches the request.
    /// Doubles as the [`RequestTicket`] value.
    seq: u64,
    tenant: TenantId,
}

impl Submitted {
    fn ticket(&self) -> RequestTicket {
        RequestTicket(self.seq)
    }
}

/// A running deadline-aware inference server.
///
/// Requests flow `submit` → weighted-fair multi-tenant EDF queue → worker
/// pool. Admission control sheds requests that cannot possibly meet their
/// deadline (and tenants that exceed their queue quota); the bounded queue
/// sheds on overload; every submitted request ends up in exactly one
/// [`Outcome`]. Workers coalesce queued requests that resolve to the same
/// LUT configuration into single batch-N engine passes when
/// `config.batching` enables it.
pub struct Server {
    queue: Arc<SharedDispatchQueue<Instant, Submitted>>,
    workers: Vec<JoinHandle<()>>,
    outcomes: Arc<Mutex<Vec<Outcome>>>,
    core: Arc<EngineCore>,
    calibration: Calibration,
    config: ServerConfig,
    ctx: RunContext,
    next_seq: AtomicU64,
    open_breakers: Arc<AtomicUsize>,
}

impl Server {
    /// Spawns the worker threads and starts serving, with the
    /// intra-inference execution pool sized by `config.exec_threads` and
    /// tracing disabled. Accepts the nested [`ServerConfig`] or (during
    /// the deprecation window) the flat
    /// [`FlatServerConfig`](crate::FlatServerConfig) shim.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`ServerConfig::validate`] —
    /// configs built through [`ServerConfig::builder`] never do.
    pub fn start(
        core: Arc<EngineCore>,
        calibration: Calibration,
        config: impl Into<ServerConfig>,
    ) -> Self {
        let config: ServerConfig = config.into();
        let backend = if config.use_plans {
            ExecBackend::Plan
        } else {
            ExecBackend::Interpret
        };
        let ctx = RunContext::default()
            .with_exec(ExecOptions::threaded(config.exec_threads).with_backend(backend));
        Self::start_with(core, calibration, config, ctx)
    }

    /// [`Server::start`] under an explicit [`RunContext`]: the context's
    /// execution options replace `config.exec_threads` (cloning the
    /// context clones the pool handle, so all workers still share one
    /// pool), and its trace sink observes the serving path — queue-wait
    /// spans, admission and shed markers, and every engine span the
    /// workers' inferences emit.
    ///
    /// # Panics
    ///
    /// Panics when the configuration fails [`ServerConfig::validate`].
    pub fn start_with(
        core: Arc<EngineCore>,
        calibration: Calibration,
        config: impl Into<ServerConfig>,
        ctx: RunContext,
    ) -> Self {
        let config: ServerConfig = config.into();
        config
            .validate()
            .expect("server started with an invalid configuration");
        let queue: Arc<SharedDispatchQueue<Instant, Submitted>> = Arc::new(
            SharedDispatchQueue::bounded(config.queue_depth, &config.tenancy.tenants),
        );
        let outcomes: Arc<Mutex<Vec<Outcome>>> = Arc::new(Mutex::new(Vec::new()));

        // One execution pool shared (via `Arc`) by every worker: cloning
        // the `RunContext` clones the pool handle and the sink handle, not
        // the threads or the sink's buffer.
        let open_breakers: Arc<AtomicUsize> = Arc::new(AtomicUsize::new(0));
        let workers = (0..config.workers)
            .map(|_| {
                let queue = queue.clone();
                let outcomes = outcomes.clone();
                let core = core.clone();
                let spu = calibration.secs_per_unit;
                let ctx = ctx.clone();
                let config = config.clone();
                let open_breakers = open_breakers.clone();
                std::thread::spawn(move || {
                    worker_loop(&queue, &outcomes, &core, &ctx, &config, &open_breakers, spu)
                })
            })
            .collect();

        Server {
            queue,
            workers,
            outcomes,
            core,
            calibration,
            config,
            ctx,
            next_seq: AtomicU64::new(0),
            open_breakers,
        }
    }

    /// The shared engine core this server runs on.
    pub fn core(&self) -> &Arc<EngineCore> {
        &self.core
    }

    /// How many workers currently have an open circuit breaker.
    pub fn open_breakers(&self) -> usize {
        self.open_breakers.load(Ordering::Relaxed)
    }

    /// The wall-clock calibration in use.
    pub fn calibration(&self) -> Calibration {
        self.calibration
    }

    /// The server's configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// The execution context (options + trace sink) the workers run with.
    pub fn run_context(&self) -> &RunContext {
        &self.ctx
    }

    /// Offers a request. Returns the typed [`Admission`] decision:
    /// [`Admission::Admitted`] carries the ticket that reappears on the
    /// request's terminal record; [`Admission::Shed`] names the reason
    /// (also recorded in the metrics).
    ///
    /// # Errors
    ///
    /// Returns [`SubmitError`] for a request the server cannot interpret
    /// (wrong resource kind, or every worker unhealthy); such a request is
    /// *not* counted as shed.
    pub fn submit(&self, request: InferenceRequest) -> Result<Admission, SubmitError> {
        if request.resource_kind != self.config.resource_kind {
            return Err(SubmitError::WrongResourceKind {
                expected: self.config.resource_kind,
                got: request.resource_kind,
            });
        }
        if self.open_breakers.load(Ordering::Relaxed) >= self.config.workers {
            return Err(SubmitError::AllWorkersUnhealthy {
                workers: self.config.workers,
            });
        }
        let now = Instant::now();
        let traced = self.ctx.trace_enabled();
        let tenant = request.tenant;
        let shed = |reason: ShedReason| {
            if traced {
                self.ctx.sink.record(EventKind::Instant {
                    name: "shed".to_string(),
                    detail: reason.name().to_string(),
                    at_ns: now_ns(),
                });
            }
            self.outcomes
                .lock()
                .push(Outcome::Shed(ShedRecord::at_admission(reason, tenant)));
            Ok(Admission::Shed(reason))
        };
        let slack_secs = request
            .deadline
            .saturating_duration_since(now)
            .as_secs_f64();
        let slack_units = self.calibration.units(slack_secs);
        if !admissible(slack_units, self.core.min_resource()) {
            return shed(ShedReason::SlackBelowCheapest);
        }
        let sub = Submitted {
            image: request.image,
            deadline: request.deadline,
            submitted_at: now,
            submitted_ns: self.ctx.sink.timestamp(),
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            tenant,
        };
        let ticket = sub.ticket();
        match self.queue.try_push(tenant, sub.deadline, sub) {
            Ok(()) => {
                if traced {
                    self.ctx.sink.record(EventKind::Instant {
                        name: "admission".to_string(),
                        detail: format!("slack_units={slack_units:.3}"),
                        at_ns: now_ns(),
                    });
                }
                Ok(Admission::Admitted { ticket })
            }
            Err(DispatchPushError::OverQuota) => shed(ShedReason::OverQuota),
            Err(DispatchPushError::Full | DispatchPushError::Closed) => shed(ShedReason::QueueFull),
        }
    }

    /// Stops accepting requests, drains everything already queued, joins
    /// all threads, and returns the aggregated metrics.
    pub fn shutdown(mut self) -> ServerMetrics {
        self.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        let outcomes = self.outcomes.lock();
        ServerMetrics::from_outcomes(&outcomes)
    }

    /// Like [`Server::shutdown`], but also returns the raw per-request
    /// [`Outcome`]s — the threaded counterpart of
    /// [`crate::simulate_outcomes`], for callers that correlate admission
    /// tickets or need distributions the aggregate metrics do not carry.
    pub fn shutdown_outcomes(mut self) -> (ServerMetrics, Vec<Outcome>) {
        self.queue.close();
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
        let outcomes = std::mem::take(&mut *self.outcomes.lock());
        (ServerMetrics::from_outcomes(&outcomes), outcomes)
    }
}

/// Signed remaining slack in seconds: negative once past due.
fn signed_slack(deadline: Instant, now: Instant) -> f64 {
    if deadline >= now {
        deadline.duration_since(now).as_secs_f64()
    } else {
        -now.duration_since(deadline).as_secs_f64()
    }
}

/// One dequeued request plus its dispatch-time bookkeeping.
struct Dispatched {
    deadline: Instant,
    sub: Submitted,
    queue_wait: f64,
}

/// The worker thread body: pop under the weighted-fair EDF discipline,
/// coalesce same-config admissible requests into a batch when batching is
/// enabled, execute, record outcomes. Per-worker health (consecutive
/// failures, circuit breaker) lives here.
fn worker_loop(
    queue: &SharedDispatchQueue<Instant, Submitted>,
    outcomes: &Mutex<Vec<Outcome>>,
    core: &Arc<EngineCore>,
    ctx: &RunContext,
    config: &ServerConfig,
    open_breakers: &AtomicUsize,
    spu: f64,
) {
    let mut scratch = ExecScratch::new();
    let mut consecutive_failures: usize = 0;
    let mut breaker_open = false;
    // Batching is disabled while a fault plan is armed: fault draws are
    // keyed per (request, attempt), and a shared batched pass would
    // entangle the members' draw histories — chaos replay stays
    // per-request and byte-identical.
    let batching = config.batching.enabled() && config.fault_tolerance.fault.is_none();
    while let PopResult::Item((_, deadline, sub)) = queue.pop() {
        let leader = dispatched(ctx, deadline, sub);
        if !batching {
            serve_request(
                core,
                ctx,
                config,
                &mut scratch,
                outcomes,
                open_breakers,
                &mut consecutive_failures,
                &mut breaker_open,
                spu,
                &leader,
            );
            continue;
        }
        // Leader resolves its configuration now; followers join only
        // while they resolve to the same one.
        let now = Instant::now();
        let slack_units = signed_slack(leader.deadline, now) / spu;
        if !admissible(slack_units, core.min_resource()) {
            // Hopeless leader: the per-request path sheds or fails it.
            serve_request(
                core,
                ctx,
                config,
                &mut scratch,
                outcomes,
                open_breakers,
                &mut consecutive_failures,
                &mut breaker_open,
                spu,
                &leader,
            );
            continue;
        }
        let budget = budget_for(config.policy, core, slack_units);
        let (entry, _) = core.select(budget);
        let window_end = now + Duration::from_secs_f64(config.batching.window);
        let mut batch = vec![leader];
        let mut earliest = deadline;
        while batch.len() < config.batching.max_batch {
            // A batch must never turn a met deadline into a miss: every
            // member finishes with the shared pass, so the batch only
            // grows while the projected finish — conservatively linear in
            // members on this substrate — still meets the earliest
            // deadline on board, and the candidate's own.
            let grown = Duration::from_secs_f64((batch.len() + 1) as f64 * entry.resource * spu);
            let now = Instant::now();
            let projected = now + grown;
            if projected > earliest {
                break;
            }
            let remaining = window_end.saturating_duration_since(now);
            let picked = queue.pop_if_timeout(remaining, |cand| {
                let cand_slack = signed_slack(cand.deadline, Instant::now()) / spu;
                projected <= cand.deadline
                    && admissible(cand_slack, core.min_resource())
                    && core
                        .select(budget_for(config.policy, core, cand_slack))
                        .0
                        .config
                        == entry.config
            });
            match picked {
                CoalescePop::Item((_, d, s)) => {
                    earliest = earliest.min(d);
                    batch.push(dispatched(ctx, d, s));
                }
                CoalescePop::Mismatch | CoalescePop::Closed => break,
                CoalescePop::Empty => {
                    if window_end <= Instant::now() {
                        break;
                    }
                }
            }
        }
        serve_batch(
            core,
            ctx,
            config,
            &mut scratch,
            outcomes,
            open_breakers,
            &mut consecutive_failures,
            &mut breaker_open,
            spu,
            batch,
            entry.clone(),
        );
    }
    // A worker that exits with its breaker open must not leave the
    // shared count pinned.
    if breaker_open {
        open_breakers.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Stamps a freshly-popped request with its queue wait (and trace span).
fn dispatched(ctx: &RunContext, deadline: Instant, sub: Submitted) -> Dispatched {
    let now = Instant::now();
    if ctx.trace_enabled() {
        ctx.sink.record(EventKind::Phase {
            phase: TracePhase::QueueWait,
            detail: String::new(),
            start_ns: sub.submitted_ns,
            end_ns: now_ns(),
        });
    }
    let queue_wait = now.duration_since(sub.submitted_at).as_secs_f64();
    Dispatched {
        deadline,
        sub,
        queue_wait,
    }
}

/// The terminal failure reason for an engine error, classified through
/// [`EngineError::as_fault`].
fn failure_reason(err: &EngineError) -> FailureReason {
    match err.as_fault() {
        Some(FaultError::InjectedCrash { .. }) => FailureReason::Crash,
        Some(FaultError::InjectedReplayFailure { .. }) => FailureReason::PlanReplay,
        Some(FaultError::GuardTripped { .. }) => FailureReason::GuardTripped,
        _ => FailureReason::Engine,
    }
}

/// Runs one coalesced batch through a single batch-N engine pass and
/// records one [`Outcome`] per member. Falls back to the per-request
/// serving path (which owns retries, breakers, and shed accounting) when
/// the batched pass fails — a batch is an optimization, never a new way
/// to lose requests.
#[allow(clippy::too_many_arguments)]
fn serve_batch(
    core: &Arc<EngineCore>,
    ctx: &RunContext,
    config: &ServerConfig,
    scratch: &mut ExecScratch,
    outcomes: &Mutex<Vec<Outcome>>,
    open_breakers: &AtomicUsize,
    consecutive_failures: &mut usize,
    breaker_open: &mut bool,
    spu: f64,
    batch: Vec<Dispatched>,
    entry: LutEntry,
) {
    if batch.len() == 1 {
        // Window expired with a lone request: exactly the unbatched path.
        let only = &batch[0];
        serve_request(
            core,
            ctx,
            config,
            scratch,
            outcomes,
            open_breakers,
            consecutive_failures,
            breaker_open,
            spu,
            only,
        );
        return;
    }
    let mut actx = ctx.clone();
    if *breaker_open && actx.exec.backend() == ExecBackend::Plan {
        let exec = actx.exec.clone().with_backend(ExecBackend::Interpret);
        actx = actx.with_exec(exec);
    }
    let actx = actx.with_fault(FaultCtx::new().with_guard(GuardConfig::default()));
    let images: Vec<Tensor> = batch.iter().map(|d| d.sub.image.clone()).collect();
    match core.run_batch(scratch, &images, entry, true, &actx) {
        Ok(inferences) => {
            let finish = Instant::now();
            if *breaker_open {
                *breaker_open = false;
                open_breakers.fetch_sub(1, Ordering::Relaxed);
            }
            *consecutive_failures = 0;
            let n = batch.len() as u32;
            let mut out = outcomes.lock();
            for (d, inf) in batch.iter().zip(inferences) {
                out.push(Outcome::Completed(RequestRecord {
                    latency: finish.duration_since(d.sub.submitted_at).as_secs_f64(),
                    queue_wait: d.queue_wait,
                    met_deadline: finish <= d.deadline,
                    accuracy: inf.norm_miou_estimate,
                    config: inf.config,
                    retries: 0,
                    faults_seen: 0,
                    tenant: d.sub.tenant,
                    ticket: Some(d.sub.ticket()),
                    batch_size: n,
                }));
            }
        }
        Err(err) => {
            // Batched pass failed (e.g. a guard trip somewhere in the
            // batch): isolate by re-serving each member individually.
            if ctx.trace_enabled() {
                ctx.sink.record(EventKind::Fault {
                    action: RecoveryAction::Retry,
                    detail: format!("batch of {} failed ({err}); serving singly", batch.len()),
                    at_ns: now_ns(),
                });
            }
            for d in &batch {
                serve_request(
                    core,
                    ctx,
                    config,
                    scratch,
                    outcomes,
                    open_breakers,
                    consecutive_failures,
                    breaker_open,
                    spu,
                    d,
                );
            }
        }
    }
}

/// Serves one dequeued request to its terminal [`Outcome`]: the
/// per-attempt loop that arms fault injection, re-checks admissibility and
/// re-derives a (tighter) budget before each attempt, runs the engine
/// under the output guard, observes watchdog overruns, and maintains this
/// worker's circuit breaker. Pushes exactly one outcome.
#[allow(clippy::too_many_arguments)]
fn serve_request(
    core: &Arc<EngineCore>,
    ctx: &RunContext,
    config: &ServerConfig,
    scratch: &mut ExecScratch,
    outcomes: &Mutex<Vec<Outcome>>,
    open_breakers: &AtomicUsize,
    consecutive_failures: &mut usize,
    breaker_open: &mut bool,
    spu: f64,
    d: &Dispatched,
) {
    let ft = &config.fault_tolerance;
    let sub = &d.sub;
    let deadline = d.deadline;
    let traced = ctx.trace_enabled();
    let fault_event = |action: RecoveryAction, detail: String| {
        if traced {
            ctx.sink.record(EventKind::Fault {
                action,
                detail,
                at_ns: now_ns(),
            });
        }
    };
    let mut attempt: u32 = 0;
    let mut faults_seen: u32 = 0;
    let mut interpret_fallback = false;
    let mut last_reason = FailureReason::Engine;
    loop {
        let now = Instant::now();
        // Signed remaining slack: negative once past due. Re-derived per
        // attempt, so a retry sees only what the fault left it — the LUT
        // then degrades the retry to a cheaper configuration by itself.
        let slack_secs = signed_slack(deadline, now);
        let slack_units = slack_secs / spu;
        if !admissible(slack_units, core.min_resource()) {
            if attempt == 0 {
                if traced {
                    ctx.sink.record(EventKind::Instant {
                        name: "shed".to_string(),
                        detail: ShedReason::SlackExhausted.name().to_string(),
                        at_ns: now_ns(),
                    });
                }
                outcomes.lock().push(Outcome::Shed(ShedRecord {
                    reason: ShedReason::SlackExhausted,
                    tenant: sub.tenant,
                    ticket: Some(sub.ticket()),
                }));
            } else {
                // Slack ran out while recovering: the fault, not the
                // queue, cost this request its deadline.
                fault_event(
                    RecoveryAction::FailFast,
                    format!("slack exhausted recovering from {last_reason}"),
                );
                outcomes.lock().push(Outcome::Failed(FailureRecord {
                    reason: last_reason,
                    retries: attempt,
                    faults_seen,
                    tenant: sub.tenant,
                    ticket: Some(sub.ticket()),
                }));
            }
            return;
        }
        let budget = budget_for(config.policy, core, slack_units);
        let (entry, _fits) = core.select(budget);
        let expected_secs = entry.resource * spu;

        let mut actx = ctx.clone();
        if (*breaker_open || interpret_fallback) && actx.exec.backend() == ExecBackend::Plan {
            let exec = actx.exec.clone().with_backend(ExecBackend::Interpret);
            actx = actx.with_exec(exec);
        }
        let mut fctx = FaultCtx::new().with_guard(GuardConfig::default());
        if let Some(plan) = ft.fault {
            fctx = fctx.armed(plan, sub.seq, attempt);
        }
        let actx = actx.with_fault(fctx);

        let began = Instant::now();
        match core.run(scratch, &sub.image, entry, true, &actx) {
            Ok(inference) => {
                let finish = Instant::now();
                let elapsed = finish.duration_since(began).as_secs_f64();
                // The threaded server cannot abort a running inference, so
                // the watchdog is observational here: an attempt that
                // overran its allowance is recorded as a detection (the
                // simulator models the true abort).
                let allowance = slack_secs.max(0.0).min(ft.watchdog_grace * expected_secs);
                if elapsed > allowance {
                    fault_event(
                        RecoveryAction::Detected,
                        format!("watchdog: ran {elapsed:.6}s, allowance {allowance:.6}s"),
                    );
                }
                if *breaker_open {
                    *breaker_open = false;
                    open_breakers.fetch_sub(1, Ordering::Relaxed);
                    fault_event(RecoveryAction::CircuitClose, String::new());
                }
                *consecutive_failures = 0;
                if attempt > 0 {
                    fault_event(RecoveryAction::Degraded, format!("retries={attempt}"));
                }
                outcomes.lock().push(Outcome::Completed(RequestRecord {
                    latency: finish.duration_since(sub.submitted_at).as_secs_f64(),
                    queue_wait: d.queue_wait,
                    met_deadline: finish <= deadline,
                    accuracy: inference.norm_miou_estimate,
                    config: inference.config,
                    retries: attempt,
                    faults_seen,
                    tenant: sub.tenant,
                    ticket: Some(sub.ticket()),
                    batch_size: 1,
                }));
                return;
            }
            Err(err) => {
                faults_seen += 1;
                *consecutive_failures += 1;
                let reason = failure_reason(&err);
                last_reason = reason;
                fault_event(RecoveryAction::Detected, format!("{reason}: {err}"));
                if *consecutive_failures >= ft.breaker_threshold && !*breaker_open {
                    *breaker_open = true;
                    open_breakers.fetch_add(1, Ordering::Relaxed);
                    fault_event(
                        RecoveryAction::CircuitOpen,
                        format!("{} consecutive failures", *consecutive_failures),
                    );
                }
                if attempt >= ft.recovery.max_retries() {
                    fault_event(RecoveryAction::FailFast, reason.name().to_string());
                    outcomes.lock().push(Outcome::Failed(FailureRecord {
                        reason,
                        retries: attempt,
                        faults_seen,
                        tenant: sub.tenant,
                        ticket: Some(sub.ticket()),
                    }));
                    return;
                }
                if reason == FailureReason::PlanReplay && !interpret_fallback {
                    interpret_fallback = true;
                    fault_event(
                        RecoveryAction::BackendFallback,
                        "plan -> interpret".to_string(),
                    );
                } else {
                    fault_event(RecoveryAction::Retry, reason.name().to_string());
                }
                attempt += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_averages_all_timed_runs() {
        // Fake clock: three scripted durations; the calibration must use
        // their mean, not any single (noisy) run.
        let mut durations = [0.010f64, 0.030, 0.020].into_iter();
        let cal = Calibration::from_timed_runs::<()>(
            &mut || Ok(durations.next().expect("exactly three runs requested")),
            3,
            4.0, // the full path costs 4 LUT units
        )
        .unwrap();
        assert!((cal.secs_per_unit - 0.020 / 4.0).abs() < 1e-12);
        assert!(durations.next().is_none(), "measure consumed every run");
    }

    #[test]
    fn calibration_propagates_timer_errors() {
        let mut calls = 0;
        let r = Calibration::from_timed_runs(
            &mut || {
                calls += 1;
                if calls == 2 {
                    Err("clock broke")
                } else {
                    Ok(0.01)
                }
            },
            3,
            1.0,
        );
        assert_eq!(r.unwrap_err(), "clock broke");
        assert_eq!(calls, 2, "stops at the first failure");
    }

    #[test]
    fn calibration_clamps_zero_durations() {
        let cal =
            Calibration::from_timed_runs::<()>(&mut || Ok(0.0), CALIBRATION_RUNS, 2.0).unwrap();
        assert!(cal.secs_per_unit > 0.0, "rate stays positive");
    }

    #[test]
    fn admission_accessors() {
        let a = Admission::Admitted {
            ticket: RequestTicket(7),
        };
        assert!(a.is_admitted());
        assert_eq!(a.ticket(), Some(RequestTicket(7)));
        let s = Admission::Shed(ShedReason::QueueFull);
        assert!(!s.is_admitted());
        assert_eq!(s.ticket(), None);
    }
}
