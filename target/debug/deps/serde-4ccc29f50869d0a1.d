/root/repo/target/debug/deps/serde-4ccc29f50869d0a1.d: vendor/serde/src/lib.rs

/root/repo/target/debug/deps/serde-4ccc29f50869d0a1: vendor/serde/src/lib.rs

vendor/serde/src/lib.rs:
