/root/repo/target/release/examples/detection_pipeline-b5244b24a1893400.d: crates/core/../../examples/detection_pipeline.rs

/root/repo/target/release/examples/detection_pipeline-b5244b24a1893400: crates/core/../../examples/detection_pipeline.rs

crates/core/../../examples/detection_pipeline.rs:
