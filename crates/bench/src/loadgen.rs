//! Seeded open-loop load generation for the serving experiments.
//!
//! Open-loop means arrivals are generated independently of how fast the
//! server drains them — the realistic overload regime, where a slow server
//! faces a growing queue instead of a politely waiting client.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vit_serve::SimArrival;

/// A seeded Poisson process: exponential inter-arrival gaps at `rate_hz`
/// mean arrivals per (virtual) second, until `duration` seconds. Every
/// request carries the same relative deadline `slack`.
pub fn poisson(rate_hz: f64, duration: f64, slack: f64, seed: u64) -> Vec<SimArrival> {
    assert!(
        rate_hz > 0.0 && duration > 0.0,
        "need positive rate and duration"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut t = 0.0;
    loop {
        // Inverse-CDF exponential sample; 1 - u in (0, 1] avoids ln(0).
        let u: f64 = rng.gen_range(0.0..1.0);
        t += -(1.0 - u).ln() / rate_hz;
        if t >= duration {
            return arrivals;
        }
        arrivals.push(SimArrival { time: t, slack });
    }
}

/// A Poisson base load plus periodic bursts: every `burst_every` seconds,
/// `burst_size` extra requests arrive back-to-back — the flash-crowd shape
/// that stresses admission control and the bounded queue.
pub fn poisson_with_bursts(
    rate_hz: f64,
    duration: f64,
    slack: f64,
    burst_every: f64,
    burst_size: usize,
    seed: u64,
) -> Vec<SimArrival> {
    assert!(burst_every > 0.0, "need a positive burst period");
    let mut arrivals = poisson(rate_hz, duration, slack, seed);
    let mut t = burst_every;
    while t < duration {
        for _ in 0..burst_size {
            arrivals.push(SimArrival { time: t, slack });
        }
        t += burst_every;
    }
    arrivals.sort_by(|a, b| a.time.total_cmp(&b.time));
    arrivals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_deterministic_and_roughly_at_rate() {
        let a = poisson(100.0, 10.0, 0.1, 42);
        let b = poisson(100.0, 10.0, 0.1, 42);
        assert_eq!(a.len(), b.len());
        assert!(a
            .iter()
            .zip(&b)
            .all(|(x, y)| x.time == y.time && x.slack == y.slack));
        // ~1000 expected; a 3-sigma band is ±~95.
        assert!((800..1200).contains(&a.len()), "got {}", a.len());
        assert!(a.windows(2).all(|w| w[0].time <= w[1].time));
        assert!(a.iter().all(|x| x.time < 10.0));
    }

    #[test]
    fn different_seeds_differ() {
        let a = poisson(50.0, 5.0, 0.1, 1);
        let b = poisson(50.0, 5.0, 0.1, 2);
        assert!(a.first().map(|x| x.time) != b.first().map(|x| x.time));
    }

    #[test]
    fn bursts_add_sorted_extra_arrivals() {
        let base = poisson(10.0, 10.0, 0.2, 7);
        let bursty = poisson_with_bursts(10.0, 10.0, 0.2, 2.5, 8, 7);
        // Bursts at t = 2.5, 5.0, 7.5 add 3 * 8 arrivals.
        assert_eq!(bursty.len(), base.len() + 24);
        assert!(bursty.windows(2).all(|w| w[0].time <= w[1].time));
        assert_eq!(bursty.iter().filter(|a| a.time == 2.5).count(), 8);
    }
}
