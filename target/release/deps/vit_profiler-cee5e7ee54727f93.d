/root/repo/target/release/deps/vit_profiler-cee5e7ee54727f93.d: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs Cargo.toml

/root/repo/target/release/deps/libvit_profiler-cee5e7ee54727f93.rmeta: crates/profiler/src/lib.rs crates/profiler/src/flops.rs crates/profiler/src/gpu.rs Cargo.toml

crates/profiler/src/lib.rs:
crates/profiler/src/flops.rs:
crates/profiler/src/gpu.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
