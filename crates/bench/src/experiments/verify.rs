//! `repro verify` — the one-command structural regression check: runs
//! every `vit-verify` pass over every built-in model at multiple input
//! sizes, plus the engine LUTs the serving stack is built on.

use crate::Table;
use vit_accel::AccelConfig;
use vit_drt::{DrtEngine, EngineFamily};
use vit_graph::Graph;
use vit_graph::SchedMeta;
use vit_graph::WeightGen;
use vit_models::{
    bert_base, build_bert, build_deformable_detr, build_detr, build_resnet, build_segformer,
    build_swin_upernet, build_vit, ofa_family, DetrConfig, ResNetConfig, SegFormerConfig,
    SegFormerVariant, SwinConfig, SwinVariant, VitConfig,
};
use vit_plan::ExecPlan;
use vit_resilience::{swin_sweep_space, AccelResource, ResourceKind, Workload};
use vit_serve::SchedulePolicy;
use vit_verify::{
    audit_sources, exec_safety_summary, verify_exec_safety, verify_lut_report,
    verify_model_on_accelerators, verify_plan, LutContext, Report, VerifyOptions,
};

/// Settings parsed from the `repro verify` command line.
#[derive(Debug, Clone, Copy, Default)]
pub struct VerifyArgs {
    /// Emit machine-readable JSON instead of tables.
    pub json: bool,
    /// Treat warnings as failures (CI mode).
    pub deny_warnings: bool,
    /// Print the per-artifact exec-safety detail table (what pass 6
    /// proved: chunk counts, liveness decisions, reassociating records).
    pub exec_safety: bool,
}

/// Maps aggregated finding counts to the process exit code — the
/// contract `repro verify` keeps with CI: non-zero on any error, and on
/// any warning under `--deny-warnings`.
pub fn exit_code(errors: usize, warnings: usize, deny_warnings: bool) -> i32 {
    i32::from(errors > 0 || (deny_warnings && warnings > 0))
}

/// The accelerator configurations every graph is checked against.
fn accels() -> Vec<(&'static str, AccelConfig)> {
    vec![
        ("accelerator_A", AccelConfig::accelerator_a()),
        ("accelerator*", AccelConfig::accelerator_star()),
    ]
}

/// Every built-in model graph the verifier covers, across input sizes.
fn model_graphs() -> Vec<(String, Graph)> {
    let mut out: Vec<(String, Graph)> = Vec::new();
    let mut push = |label: String, g: Result<Graph, vit_models::ModelError>| match g {
        Ok(g) => out.push((label, g)),
        Err(e) => panic!("building {label} failed: {e}"),
    };

    for variant in [
        SegFormerVariant::b0(),
        SegFormerVariant::b1(),
        SegFormerVariant::b2(),
    ] {
        for (h, w) in [(64, 64), (128, 128), (512, 512)] {
            let name = variant.name;
            push(
                format!("{name} ade20k {h}x{w}"),
                build_segformer(&SegFormerConfig::ade20k(variant).with_image(h, w)),
            );
        }
    }
    for variant in [
        SwinVariant::tiny(),
        SwinVariant::small(),
        SwinVariant::base(),
    ] {
        for (h, w) in [(64, 64), (256, 256)] {
            let name = variant.name;
            push(
                format!("{name} ade20k {h}x{w}"),
                build_swin_upernet(&SwinConfig::ade20k(variant).with_image(h, w)),
            );
        }
    }
    for (h, w) in [(160, 224), (480, 640)] {
        push(
            format!("detr coco {h}x{w}"),
            build_detr(&DetrConfig::detr_coco().with_image(h, w)),
        );
        push(
            format!("deformable-detr coco {h}x{w}"),
            build_deformable_detr(&DetrConfig::deformable_coco().with_image(h, w)),
        );
    }
    push(
        "vit-b16 imagenet 224x224".to_string(),
        build_vit(&VitConfig::base16()),
    );
    push(
        "bert-base seq128".to_string(),
        build_bert(&bert_base(), 128, 1),
    );
    push(
        "resnet50 imagenet 224x224".to_string(),
        build_resnet(&ResNetConfig::imagenet()).map(|r| r.graph),
    );
    push(
        "resnet50-backbone coco".to_string(),
        build_resnet(&ResNetConfig::coco_backbone()).map(|r| r.graph),
    );
    for subnet in ofa_family() {
        push(
            format!("ofa {} 224x224", subnet.label),
            subnet.build_classifier((224, 224), 1).map(|r| r.graph),
        );
    }
    out
}

/// The engine LUTs the serving stack ships with, each paired with the
/// deployment context the LUT pass checks it against.
fn engine_luts() -> Vec<(String, vit_drt::Lut, LutContext)> {
    let policies = vec![
        SchedulePolicy::DrtDynamic,
        SchedulePolicy::static_full(),
        SchedulePolicy::Static { entry_index: 0 },
    ];
    let mut out = Vec::new();

    let e = DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        ResourceKind::GpuTime,
    )
    .expect("b0 gpu-time engine builds");
    let mut ctx = LutContext::bare(
        EngineFamily::SegFormer(SegFormerVariant::b0()),
        150,
        (64, 64),
    );
    ctx.budget_floor = Some(e.lut().entries()[0].resource);
    ctx.policies = policies.clone();
    out.push(("segformer-b0 gpu-time".to_string(), e.lut().clone(), ctx));

    let e = DrtEngine::segformer_on_accelerator(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        &AccelConfig::accelerator_star(),
        AccelResource::Cycles,
    )
    .expect("b0 accel-cycles engine builds");
    let mut ctx = LutContext::bare(
        EngineFamily::SegFormer(SegFormerVariant::b0()),
        150,
        (64, 64),
    );
    ctx.budget_floor = Some(e.lut().entries()[0].resource);
    ctx.policies = policies.clone();
    out.push((
        "segformer-b0 accel-cycles".to_string(),
        e.lut().clone(),
        ctx,
    ));

    let tiny = SwinVariant::tiny();
    let space = swin_sweep_space(&tiny, 2, 4);
    let e = DrtEngine::swin(
        tiny,
        Workload::SwinTinyAde,
        (64, 64),
        &space,
        ResourceKind::GpuTime,
    )
    .expect("swin-tiny engine builds");
    let mut ctx = LutContext::bare(EngineFamily::Swin(tiny), 150, (64, 64));
    ctx.budget_floor = Some(e.lut().entries()[0].resource);
    ctx.policies = policies;
    out.push(("swin-tiny gpu-time".to_string(), e.lut().clone(), ctx));

    out
}

/// Runs the full verification suite; returns the process exit code.
pub fn run(args: VerifyArgs) -> i32 {
    let opts = VerifyOptions::default();
    let accels = accels();
    let accel_refs: Vec<(&str, AccelConfig)> = accels.to_vec();
    let mut reports: Vec<Report> = Vec::new();
    let mut safety_rows: Vec<(String, String)> = Vec::new();

    for (label, graph) in model_graphs() {
        let mut report = verify_model_on_accelerators(&graph, &accel_refs, &opts);
        // Pass 5: lower the graph into a compiled plan and prove the two
        // are the same program. Only meaningful over a sound graph.
        if report.errors() == 0 {
            match ExecPlan::compile(&graph, WeightGen::new(0)) {
                Ok(plan) => {
                    report.extend(verify_plan(&graph, &plan));
                    // Pass 6: prove the plan safe to run in parallel —
                    // chunk disjointness, reclamation soundness against
                    // the scheduler metadata the executor would use, and
                    // the shadow-replay cross-check.
                    let sched = SchedMeta::of(&graph);
                    report.extend(verify_exec_safety(&graph, &plan, &sched));
                    if args.exec_safety {
                        safety_rows.push((label.clone(), exec_safety_summary(&plan).to_string()));
                    }
                }
                Err(e) => panic!("compiling a plan for {label} failed: {e}"),
            }
        }
        report.target = format!("{label} ({} nodes)", graph.len());
        reports.push(report);
    }
    // The unsafe/indexing audit covers sources, not artifacts: one report
    // for the whole workspace hot path.
    let mut audit = Report::new("hot-path source audit (V057/V058)");
    audit.extend(audit_sources());
    reports.push(audit);
    for (label, lut, ctx) in engine_luts() {
        let mut report = verify_lut_report(&lut, &ctx, &opts);
        report.target = format!("LUT {label} ({} rows)", lut.len());
        reports.push(report);
    }

    let errors: usize = reports.iter().map(Report::errors).sum();
    let warnings: usize = reports.iter().map(Report::warnings).sum();

    if args.json {
        let mut out = String::from("[");
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&r.to_json());
        }
        out.push(']');
        println!("{out}");
    } else {
        let mut t = Table::new(&["target", "errors", "warnings", "status"]);
        for r in &reports {
            let status = if r.is_clean(args.deny_warnings) {
                "ok"
            } else {
                "FAIL"
            };
            t.row(&[
                r.target.clone(),
                r.errors().to_string(),
                r.warnings().to_string(),
                status.to_string(),
            ]);
        }
        t.print();
        if args.exec_safety {
            let mut t = Table::new(&["target", "exec safety (pass 6)"]);
            for (label, summary) in &safety_rows {
                t.row(&[label.clone(), summary.clone()]);
            }
            println!();
            t.print();
        }
        for r in reports.iter().filter(|r| !r.diagnostics.is_empty()) {
            print!("\n{}", r.render());
        }
        println!(
            "\nverify: {} target(s), {errors} error(s), {warnings} warning(s){}",
            reports.len(),
            if args.deny_warnings {
                " (warnings denied)"
            } else {
                ""
            }
        );
    }
    exit_code(errors, warnings, args.deny_warnings)
}
