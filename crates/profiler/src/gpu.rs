//! Calibrated GPU latency and energy model (NVIDIA TITAN V class, clocks
//! locked to 1005 MHz, the paper's measurement platform).
//!
//! Per-node time follows a roofline with per-class effective throughput:
//!
//! `t = max(flops / throughput(class, shape, batch), bytes / bandwidth) + overhead`
//!
//! The constants are calibrated against the paper's published measurements
//! (Table I latencies; the Figure 3/4 observation that convolutions take
//! ~25% of SegFormer time despite 68% of FLOPs; the Figure 1 observation
//! that the backbone's time share *grows* with batch size because attention
//! kernels benefit more from batching). Absolute milliseconds are a model,
//! not a measurement — every experiment in the reproduction depends on the
//! *shape* of these curves, which the calibration pins down.

use crate::flops::node_io_bytes;
use serde::{Deserialize, Serialize};
use vit_graph::{Graph, Node, Op, OpClass};

/// Tunable constants of the GPU model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuParams {
    /// Effective throughput of 1x1-kernel (GEMM-like) convolutions, in
    /// MACs/s.
    pub conv_1x1_macs_per_s: f64,
    /// Effective throughput of spatial (k >= 2) convolutions.
    pub conv_spatial_macs_per_s: f64,
    /// Effective throughput of linear layers / plain matmuls.
    pub matmul_macs_per_s: f64,
    /// Effective throughput of *small* attention kernels (scores/softmax/
    /// context), which run unblocked and scattered in the profiled
    /// frameworks.
    pub attention_macs_per_s: f64,
    /// Peak throughput attention approaches for very large score matrices
    /// (big attention GEMMs are efficient on the GPU).
    pub attention_peak_macs_per_s: f64,
    /// Work size (MACs) at which an attention kernel reaches half of the
    /// way from small-kernel to peak throughput.
    pub attention_saturation_macs: f64,
    /// Achievable DRAM bandwidth for memory-bound layers, bytes/s.
    pub mem_bandwidth_bytes_per_s: f64,
    /// Fixed per-kernel launch overhead, seconds.
    pub kernel_overhead_s: f64,
    /// Batch-scaling gain of matmul/attention kernels:
    /// `throughput *= 1 + gain * (1 - 1/batch)`.
    pub batch_gain_matmul: f64,
    /// Batch-scaling gain of convolution kernels (small: already efficient).
    pub batch_gain_conv: f64,
    /// Board power attributable to static + non-SM activity, watts.
    pub static_power_w: f64,
    /// Dynamic energy per MAC (f32), joules.
    pub energy_per_mac_j: f64,
    /// Dynamic energy per DRAM byte, joules.
    pub energy_per_byte_j: f64,
}

impl Default for GpuParams {
    /// TITAN V @ 1005 MHz calibration (see module docs).
    fn default() -> Self {
        GpuParams {
            conv_1x1_macs_per_s: 2.4e12,
            conv_spatial_macs_per_s: 1.5e12,
            matmul_macs_per_s: 1.1e12,
            attention_macs_per_s: 0.15e12,
            attention_peak_macs_per_s: 1.8e12,
            attention_saturation_macs: 4e9,
            mem_bandwidth_bytes_per_s: 300e9,
            kernel_overhead_s: 8e-6,
            batch_gain_matmul: 1.4,
            batch_gain_conv: 0.15,
            static_power_w: 80.0,
            energy_per_mac_j: 18e-12,
            energy_per_byte_j: 60e-12,
        }
    }
}

/// The calibrated GPU model.
///
/// # Examples
///
/// ```
/// use vit_models::{build_segformer, SegFormerConfig, SegFormerVariant};
/// use vit_profiler::GpuModel;
///
/// # fn main() -> Result<(), vit_models::ModelError> {
/// let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2()))?;
/// let gpu = GpuModel::titan_v();
/// let ms = gpu.total_time(&g) * 1e3;
/// assert!(ms > 30.0 && ms < 90.0); // paper: 58 ms
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GpuModel {
    params: GpuParams,
}

impl GpuModel {
    /// The default TITAN V calibration.
    pub fn titan_v() -> Self {
        GpuModel {
            params: GpuParams::default(),
        }
    }

    /// A model with explicit constants (for sensitivity studies).
    pub fn with_params(params: GpuParams) -> Self {
        GpuModel { params }
    }

    /// The model constants.
    pub fn params(&self) -> &GpuParams {
        &self.params
    }

    fn throughput(&self, graph: &Graph, node: &Node, batch: usize) -> f64 {
        let p = &self.params;
        let batch_f = batch.max(1) as f64;
        match node.op.class() {
            OpClass::Conv => {
                let base = match &node.op {
                    Op::Conv2d { kernel, groups, .. } => {
                        if *groups > 1 {
                            // Depthwise/grouped convolutions are bandwidth
                            // starved; give them matmul-class throughput.
                            p.matmul_macs_per_s
                        } else if kernel.0 == 1 && kernel.1 == 1 {
                            p.conv_1x1_macs_per_s
                        } else {
                            p.conv_spatial_macs_per_s
                        }
                    }
                    _ => p.conv_spatial_macs_per_s,
                };
                base * (1.0 + p.batch_gain_conv * (1.0 - 1.0 / batch_f))
            }
            OpClass::Matmul => {
                p.matmul_macs_per_s * (1.0 + p.batch_gain_matmul * (1.0 - 1.0 / batch_f))
            }
            OpClass::Attention if matches!(node.op, Op::DeformAttn { .. }) => {
                // Deformable attention is dominated by its dense
                // projections; give it matmul-class throughput.
                p.matmul_macs_per_s * (1.0 + p.batch_gain_matmul * (1.0 - 1.0 / batch_f))
            }
            OpClass::Attention => {
                // Saturating throughput: tiny unblocked kernels run at the
                // small-kernel rate, huge score matrices approach peak.
                let work = node.flops(graph) as f64;
                let util = work / (work + p.attention_saturation_macs);
                let base = p.attention_macs_per_s
                    + (p.attention_peak_macs_per_s - p.attention_macs_per_s) * util;
                base * (1.0 + p.batch_gain_matmul * (1.0 - 1.0 / batch_f))
            }
            // Norm / elementwise / memory nodes are bandwidth-bound; their
            // "throughput" never binds because the byte term dominates.
            _ => f64::INFINITY,
        }
    }

    /// Modeled execution time of one node, in seconds.
    pub fn node_time(&self, graph: &Graph, node: &Node) -> f64 {
        if matches!(node.op, Op::Input { .. } | Op::Identity) {
            return 0.0;
        }
        let batch = node.shape.first().copied().unwrap_or(1);
        let flops = node.flops(graph) as f64;
        let bytes = node_io_bytes(graph, node) as f64;
        let compute = flops / self.throughput(graph, node, batch);
        let memory = bytes / self.params.mem_bandwidth_bytes_per_s;
        compute.max(memory) + self.params.kernel_overhead_s
    }

    /// Modeled end-to-end latency of a graph, in seconds.
    ///
    /// The GPU executes kernels back-to-back; model-level parallelism is an
    /// accelerator feature (§V), not part of the GPU baseline.
    pub fn total_time(&self, graph: &Graph) -> f64 {
        graph.iter().map(|(_, n)| self.node_time(graph, n)).sum()
    }

    /// Modeled energy of one node, in joules.
    pub fn node_energy(&self, graph: &Graph, node: &Node) -> f64 {
        let t = self.node_time(graph, node);
        let flops = node.flops(graph) as f64;
        let bytes = node_io_bytes(graph, node) as f64;
        self.params.static_power_w * t
            + self.params.energy_per_mac_j * flops
            + self.params.energy_per_byte_j * bytes
    }

    /// Modeled energy of a full graph execution, in joules.
    pub fn total_energy(&self, graph: &Graph) -> f64 {
        graph.iter().map(|(_, n)| self.node_energy(graph, n)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vit_models::{
        build_detr, build_segformer, build_swin_upernet, DetrConfig, SegFormerConfig,
        SegFormerVariant, SwinConfig, SwinVariant,
    };

    #[test]
    fn segformer_b2_ade_latency_near_paper() {
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let ms = GpuModel::titan_v().total_time(&g) * 1e3;
        // Paper Table I: 58 ms.
        assert!(
            (ms - 58.0).abs() / 58.0 < 0.30,
            "got {ms:.1} ms, expected ~58"
        );
    }

    #[test]
    fn segformer_b2_cityscapes_latency_near_paper() {
        let g = build_segformer(&SegFormerConfig::cityscapes(SegFormerVariant::b2())).unwrap();
        let ms = GpuModel::titan_v().total_time(&g) * 1e3;
        // Paper Table I: 415 ms.
        assert!(
            (ms - 415.0).abs() / 415.0 < 0.30,
            "got {ms:.1} ms, expected ~415"
        );
    }

    #[test]
    fn swin_tiny_latency_near_paper() {
        let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
        let ms = GpuModel::titan_v().total_time(&g) * 1e3;
        // Paper Table I: 215 ms.
        assert!(
            (ms - 215.0).abs() / 215.0 < 0.35,
            "got {ms:.1} ms, expected ~215"
        );
    }

    #[test]
    fn segformer_conv_time_share_well_below_flops_share() {
        // Paper Fig. 3: convolutions are 68% of FLOPs but ~25% of time.
        let g = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap();
        let gpu = GpuModel::titan_v();
        let total = gpu.total_time(&g);
        let conv_time: f64 = g
            .iter()
            .filter(|(_, n)| n.op.class() == OpClass::Conv)
            .map(|(_, n)| gpu.node_time(&g, n))
            .sum();
        let share = conv_time / total;
        assert!(share > 0.15 && share < 0.40, "conv time share {share:.2}");
    }

    #[test]
    fn detr_backbone_dominates_time_and_grows_with_batch() {
        // Paper Fig. 1.
        let share_at = |batch: usize| -> f64 {
            let g = build_detr(&DetrConfig::detr_coco().with_batch(batch)).unwrap();
            let gpu = GpuModel::titan_v();
            let mut backbone = 0.0;
            let mut rest = 0.0;
            for (_, n) in g.iter() {
                let t = gpu.node_time(&g, n);
                if matches!(n.role, vit_graph::LayerRole::Backbone) {
                    backbone += t;
                } else {
                    rest += t;
                }
            }
            backbone / (backbone + rest)
        };
        let s1 = share_at(1);
        let s16 = share_at(16);
        assert!(s1 > 0.6, "batch-1 backbone share {s1:.2}");
        assert!(
            s16 > s1,
            "share should grow with batch: {s1:.2} -> {s16:.2}"
        );
    }

    #[test]
    fn energy_savings_exceed_time_savings_when_pruning() {
        // Paper §III-A: 17% time saving drops energy by 28% — pruning cuts
        // compute proportionally more than wall time.
        use vit_models::SegFormerDynamic;
        let variant = SegFormerVariant::b2();
        let full = build_segformer(&SegFormerConfig::ade20k(variant)).unwrap();
        let pruned = build_segformer(&SegFormerConfig::ade20k(variant).with_dynamic(
            SegFormerDynamic::with_depths_and_fuse(&variant, [2, 3, 5, 3], 1024),
        ))
        .unwrap();
        let gpu = GpuModel::titan_v();
        let dt = 1.0 - gpu.total_time(&pruned) / gpu.total_time(&full);
        let de = 1.0 - gpu.total_energy(&pruned) / gpu.total_energy(&full);
        assert!(dt > 0.05, "time saving {dt:.2}");
        assert!(
            de > dt,
            "energy saving {de:.2} should exceed time saving {dt:.2}"
        );
    }

    #[test]
    fn larger_batch_reduces_per_image_time() {
        let g1 = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0())).unwrap();
        let g8 = build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b0()).with_batch(8))
            .unwrap();
        let gpu = GpuModel::titan_v();
        let per_image_1 = gpu.total_time(&g1);
        let per_image_8 = gpu.total_time(&g8) / 8.0;
        assert!(per_image_8 < per_image_1);
    }

    #[test]
    fn overhead_dominates_trivial_nodes() {
        let mut g = Graph::new("t");
        let x = g.input("in", &[1, 1, 2, 2]).unwrap();
        let r = g
            .add("relu", Op::Relu, vit_graph::LayerRole::Other, &[x])
            .unwrap();
        g.set_output(r);
        let gpu = GpuModel::titan_v();
        let t = gpu.node_time(&g, g.node(r));
        assert!((t - gpu.params().kernel_overhead_s).abs() / t < 0.01);
    }
}
