/root/repo/target/release/deps/rand-417f76c3c5dd9ca2.d: vendor/rand/src/lib.rs Cargo.toml

/root/repo/target/release/deps/librand-417f76c3c5dd9ca2.rmeta: vendor/rand/src/lib.rs Cargo.toml

vendor/rand/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
