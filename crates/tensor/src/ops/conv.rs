//! 2-D convolution kernels (standard, grouped, and depthwise).

use crate::error::{invalid_argument, invalid_shape, shape_mismatch, Result};
use crate::ops::fused::Epilogue;
use crate::par::ExecCtx;
use crate::tensor::Tensor;

/// Convolution hyper-parameters.
///
/// Kernel size is carried by the weight tensor; this struct holds stride,
/// padding, and group count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dParams {
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
    /// Rows of implicit zero padding on the top and bottom.
    pub pad_h: usize,
    /// Columns of implicit zero padding on the left and right.
    pub pad_w: usize,
    /// Number of groups; `groups == in_channels == out_channels` gives a
    /// depthwise convolution.
    pub groups: usize,
}

impl Conv2dParams {
    /// Unit-stride, unpadded, ungrouped parameters.
    pub fn new() -> Self {
        Conv2dParams {
            stride_h: 1,
            stride_w: 1,
            pad_h: 0,
            pad_w: 0,
            groups: 1,
        }
    }

    /// Sets an identical stride in both directions.
    pub fn stride(mut self, s: usize) -> Self {
        self.stride_h = s;
        self.stride_w = s;
        self
    }

    /// Sets identical padding in both directions.
    pub fn pad(mut self, p: usize) -> Self {
        self.pad_h = p;
        self.pad_w = p;
        self
    }

    /// Sets the group count.
    pub fn groups(mut self, g: usize) -> Self {
        self.groups = g;
        self
    }

    /// Output spatial size for an input of `(h, w)` with kernel `(r, s)`.
    ///
    /// Follows the usual floor convention:
    /// `out = (in + 2*pad - kernel) / stride + 1`.
    pub fn out_size(&self, h: usize, w: usize, r: usize, s: usize) -> (usize, usize) {
        let oh = (h + 2 * self.pad_h).saturating_sub(r) / self.stride_h + 1;
        let ow = (w + 2 * self.pad_w).saturating_sub(s) / self.stride_w + 1;
        (oh, ow)
    }
}

impl Default for Conv2dParams {
    fn default() -> Self {
        Self::new()
    }
}

/// 2-D convolution.
///
/// `input` is NCHW `[n, c, h, w]`; `weight` is `[k, c/groups, r, s]`;
/// `bias` is `[k]` or `None`. Returns `[n, k, oh, ow]`.
///
/// # Errors
///
/// Returns an error when channel counts are inconsistent with `groups`, when
/// the kernel is larger than the padded input, or when the bias length is
/// wrong.
///
/// # Examples
///
/// ```
/// use vit_tensor::{Tensor, ops::{conv2d, Conv2dParams}};
/// # fn main() -> Result<(), vit_tensor::TensorError> {
/// // 1x1 convolution acting as a per-pixel channel mix.
/// let x = Tensor::ones(&[1, 3, 2, 2]);
/// let w = Tensor::ones(&[4, 3, 1, 1]);
/// let y = conv2d(&x, &w, None, Conv2dParams::new())?;
/// assert_eq!(y.shape(), &[1, 4, 2, 2]);
/// assert_eq!(y.data()[0], 3.0);
/// # Ok(())
/// # }
/// ```
pub fn conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
) -> Result<Tensor> {
    conv2d_ctx(input, weight, bias, p, &ExecCtx::default())
}

/// Geometry of one [`conv2d_ctx`] call, shared by every output chunk.
#[derive(Clone, Copy)]
pub(crate) struct ConvGeom {
    pub(crate) c: usize,
    pub(crate) h: usize,
    pub(crate) w: usize,
    pub(crate) k: usize,
    pub(crate) c_per_g: usize,
    pub(crate) k_per_g: usize,
    pub(crate) r: usize,
    pub(crate) s: usize,
    pub(crate) oh: usize,
    pub(crate) ow: usize,
    pub(crate) p: Conv2dParams,
}

/// Computes output channel-planes `[row0, row0 + rows)` of the flattened
/// `(batch, out_channel)` axis into `od` (that range's contiguous slice),
/// applying `ep` at each element's final store.
///
/// Each output element is one sequentially-accumulated dot product — the
/// exact operation order of the single-threaded kernel — so splitting the
/// plane range across threads cannot change a single bit of the result.
pub(crate) fn conv2d_rows(
    xd: &[f32],
    wd: &[f32],
    bd: Option<&[f32]>,
    od: &mut [f32],
    row0: usize,
    g: ConvGeom,
    ep: Epilogue,
) {
    let plane = g.oh * g.ow;
    let rows = od.len() / plane;
    for row in 0..rows {
        let (b, ko) = ((row0 + row) / g.k, (row0 + row) % g.k);
        let c_start = (ko / g.k_per_g) * g.c_per_g;
        let bias_k = bd.map_or(0.0, |bd| bd[ko]);
        for oy in 0..g.oh {
            for ox in 0..g.ow {
                let mut acc = 0.0f32;
                for ci in 0..g.c_per_g {
                    let cin = c_start + ci;
                    for ry in 0..g.r {
                        let iy = oy * g.p.stride_h + ry;
                        if iy < g.p.pad_h || iy >= g.h + g.p.pad_h {
                            continue;
                        }
                        let iy = iy - g.p.pad_h;
                        let wrow = (ko * g.c_per_g + ci) * g.r + ry;
                        for sx in 0..g.s {
                            let ix = ox * g.p.stride_w + sx;
                            if ix < g.p.pad_w || ix >= g.w + g.p.pad_w {
                                continue;
                            }
                            let ix = ix - g.p.pad_w;
                            acc +=
                                xd[((b * g.c + cin) * g.h + iy) * g.w + ix] * wd[wrow * g.s + sx];
                        }
                    }
                }
                od[row * plane + oy * g.ow + ox] = ep.apply(acc + bias_k);
            }
        }
    }
}

/// [`conv2d`] with an execution context: output channel-planes are tiled
/// across the context's thread pool and the output buffer is drawn from
/// its buffer pool. Bit-identical to [`conv2d`] at any thread count.
///
/// # Errors
///
/// Returns the same validation errors as [`conv2d`].
pub fn conv2d_ctx(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    p: Conv2dParams,
    ctx: &ExecCtx<'_>,
) -> Result<Tensor> {
    if input.rank() != 4 || weight.rank() != 4 {
        return Err(invalid_shape(
            "conv2d",
            format!(
                "input and weight must be rank 4, got {:?} and {:?}",
                input.shape(),
                weight.shape()
            ),
        ));
    }
    if p.stride_h == 0 || p.stride_w == 0 {
        return Err(invalid_argument(
            "conv2d",
            "stride must be nonzero".to_string(),
        ));
    }
    if p.groups == 0 {
        return Err(invalid_argument(
            "conv2d",
            "groups must be nonzero".to_string(),
        ));
    }
    let (n, c, h, w) = (
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    );
    let (k, c_per_g, r, s) = (
        weight.shape()[0],
        weight.shape()[1],
        weight.shape()[2],
        weight.shape()[3],
    );
    if c % p.groups != 0 || k % p.groups != 0 {
        return Err(invalid_argument(
            "conv2d",
            format!(
                "channels ({c} in, {k} out) not divisible by groups {}",
                p.groups
            ),
        ));
    }
    if c / p.groups != c_per_g {
        return Err(shape_mismatch(
            "conv2d",
            format!(
                "weight in-channels {} (= {c} / groups {})",
                c / p.groups,
                p.groups
            ),
            format!("{c_per_g}"),
        ));
    }
    if h + 2 * p.pad_h < r || w + 2 * p.pad_w < s {
        return Err(invalid_shape(
            "conv2d",
            format!(
                "kernel {r}x{s} larger than padded input {}x{}",
                h + 2 * p.pad_h,
                w + 2 * p.pad_w
            ),
        ));
    }
    if let Some(b) = bias {
        if b.numel() != k {
            return Err(shape_mismatch(
                "conv2d",
                format!("bias of {k} elements"),
                format!("{:?}", b.shape()),
            ));
        }
    }
    let (oh, ow) = p.out_size(h, w, r, s);
    let mut out = ctx.alloc_zeroed(&[n, k, oh, ow]);
    let xd = input.data();
    let wd = weight.data();
    let bd = bias.map(Tensor::data);
    let geom = ConvGeom {
        c,
        h,
        w,
        k,
        c_per_g,
        k_per_g: k / p.groups,
        r,
        s,
        oh,
        ow,
        p,
    };
    let plane = oh * ow;
    ctx.for_each_row_chunk(out.data_mut(), plane, |_, start, piece| {
        conv2d_rows(
            xd,
            wd,
            bd,
            piece,
            start / plane.max(1),
            geom,
            Epilogue::None,
        );
    });
    Ok(out)
}

/// Depthwise 2-D convolution: one filter per channel
/// (`groups == in_channels == out_channels`).
///
/// `weight` is `[c, 1, r, s]`.
///
/// # Errors
///
/// Propagates the validation errors of [`conv2d`].
pub fn depthwise_conv2d(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    mut p: Conv2dParams,
) -> Result<Tensor> {
    let c = input
        .shape()
        .get(1)
        .copied()
        .ok_or_else(|| invalid_shape("depthwise_conv2d", "input must be rank 4".to_string()))?;
    p.groups = c;
    conv2d(input, weight, bias, p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv_1x1_is_channel_mix() {
        // 2 input channels, 1 output channel, weights [1, 2]:
        // out = 1*x0 + 2*x1 per pixel.
        let x = Tensor::from_vec(
            vec![
                1.0, 2.0, 3.0, 4.0, // channel 0
                10.0, 20.0, 30.0, 40.0, // channel 1
            ],
            &[1, 2, 2, 2],
        )
        .unwrap();
        let w = Tensor::from_vec(vec![1.0, 2.0], &[1, 2, 1, 1]).unwrap();
        let y = conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[21.0, 42.0, 63.0, 84.0]);
    }

    #[test]
    fn conv_3x3_hand_example() {
        // 3x3 mean filter over a 3x3 image with padding 1.
        let x = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let w = Tensor::full(&[1, 1, 3, 3], 1.0);
        let y = conv2d(&x, &w, None, Conv2dParams::new().pad(1)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 3, 3]);
        // Center output = sum of all 9 inputs = 45.
        assert_eq!(y.at(&[0, 0, 1, 1]), 45.0);
        // Top-left output = sum of the 2x2 top-left block = 1+2+4+5 = 12.
        assert_eq!(y.at(&[0, 0, 0, 0]), 12.0);
    }

    #[test]
    fn conv_stride_downsamples() {
        let x = Tensor::ones(&[1, 1, 8, 8]);
        let w = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv2d(&x, &w, None, Conv2dParams::new().stride(2)).unwrap();
        assert_eq!(y.shape(), &[1, 1, 4, 4]);
        assert!(y.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn conv_overlapping_patch_embed_shape() {
        // SegFormer stage-0 patch embedding: 7x7 kernel, stride 4, pad 3.
        let x = Tensor::zeros(&[1, 3, 64, 64]);
        let w = Tensor::zeros(&[32, 3, 7, 7]);
        let p = Conv2dParams::new().stride(4).pad(3);
        let y = conv2d(&x, &w, None, p).unwrap();
        assert_eq!(y.shape(), &[1, 32, 16, 16]);
    }

    #[test]
    fn conv_bias_added_per_channel() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(vec![3.0, -1.0], &[2]).unwrap();
        let y = conv2d(&x, &w, Some(&b), Conv2dParams::new()).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]), 3.0);
        assert_eq!(y.at(&[0, 1, 1, 1]), -1.0);
    }

    #[test]
    fn depthwise_applies_per_channel_filter() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 2, 1, 2]).unwrap();
        // Channel 0 doubled, channel 1 negated.
        let w = Tensor::from_vec(vec![2.0, -1.0], &[2, 1, 1, 1]).unwrap();
        let y = depthwise_conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        assert_eq!(y.data(), &[2.0, 4.0, -3.0, -4.0]);
    }

    #[test]
    fn grouped_conv_partitions_channels() {
        // 4 in channels, 2 groups, 2 out channels: each output sees only its
        // half of the input channels.
        let x = Tensor::from_vec(vec![1.0, 10.0, 100.0, 1000.0], &[1, 4, 1, 1]).unwrap();
        let w = Tensor::ones(&[2, 2, 1, 1]);
        let y = conv2d(&x, &w, None, Conv2dParams::new().groups(2)).unwrap();
        assert_eq!(y.data(), &[11.0, 1100.0]);
    }

    #[test]
    fn conv_rejects_bad_groups_and_channels() {
        let x = Tensor::zeros(&[1, 3, 4, 4]);
        let w = Tensor::zeros(&[2, 3, 1, 1]);
        assert!(conv2d(&x, &w, None, Conv2dParams::new().groups(2)).is_err());
        let w_bad = Tensor::zeros(&[2, 4, 1, 1]);
        assert!(conv2d(&x, &w_bad, None, Conv2dParams::new()).is_err());
    }

    #[test]
    fn conv_matches_linear_for_1x1_on_flattened_pixels() {
        // A 1x1 conv is exactly a linear layer over channels at each pixel.
        let x = Tensor::rand_uniform(&[1, 6, 3, 3], -1.0, 1.0, 5);
        let w = Tensor::rand_uniform(&[4, 6, 1, 1], -1.0, 1.0, 6);
        let y = conv2d(&x, &w, None, Conv2dParams::new()).unwrap();
        let w2 = w.reshape(&[4, 6]).unwrap();
        // NCHW -> (HW, C)
        let xs = x.reshape(&[6, 9]).unwrap().transpose2().unwrap();
        let ys = crate::ops::linear(&xs, &w2, None).unwrap();
        for pix in 0..9 {
            for ch in 0..4 {
                let a = y.data()[ch * 9 + pix];
                let b = ys.data()[pix * 4 + ch];
                assert!((a - b).abs() < 1e-5, "pixel {pix} channel {ch}: {a} vs {b}");
            }
        }
    }
}
