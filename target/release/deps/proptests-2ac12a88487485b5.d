/root/repo/target/release/deps/proptests-2ac12a88487485b5.d: crates/models/tests/proptests.rs

/root/repo/target/release/deps/proptests-2ac12a88487485b5: crates/models/tests/proptests.rs

crates/models/tests/proptests.rs:
