/root/repo/target/release/deps/vit_data-b2d927c34249ac20.d: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs Cargo.toml

/root/repo/target/release/deps/libvit_data-b2d927c34249ac20.rmeta: crates/data/src/lib.rs crates/data/src/metrics.rs crates/data/src/scene.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/metrics.rs:
crates/data/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
