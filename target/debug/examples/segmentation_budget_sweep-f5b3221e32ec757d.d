/root/repo/target/debug/examples/segmentation_budget_sweep-f5b3221e32ec757d.d: crates/core/../../examples/segmentation_budget_sweep.rs

/root/repo/target/debug/examples/segmentation_budget_sweep-f5b3221e32ec757d: crates/core/../../examples/segmentation_budget_sweep.rs

crates/core/../../examples/segmentation_budget_sweep.rs:
