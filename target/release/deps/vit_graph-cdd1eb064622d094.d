/root/repo/target/release/deps/vit_graph-cdd1eb064622d094.d: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

/root/repo/target/release/deps/vit_graph-cdd1eb064622d094: crates/graph/src/lib.rs crates/graph/src/exec.rs crates/graph/src/graph.rs crates/graph/src/op.rs

crates/graph/src/lib.rs:
crates/graph/src/exec.rs:
crates/graph/src/graph.rs:
crates/graph/src/op.rs:
