/root/repo/target/release/examples/serving_load_sweep-121e97e52d70fdd9.d: crates/bench/../../examples/serving_load_sweep.rs Cargo.toml

/root/repo/target/release/examples/libserving_load_sweep-121e97e52d70fdd9.rmeta: crates/bench/../../examples/serving_load_sweep.rs Cargo.toml

crates/bench/../../examples/serving_load_sweep.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
