//! Regression tests pinning every reproduced headline claim of the paper.
//! Each test names the claim and the tolerance at which this reproduction
//! holds it (see EXPERIMENTS.md for the narrative record).

use vit_accel::{simulate, AccelConfig, SimOptions};
use vit_graph::OpClass;
use vit_models::{
    build_detr, build_segformer, build_swin_upernet, ofa_family, DetrConfig, SegFormerConfig,
    SegFormerDynamic, SegFormerVariant, SwinConfig, SwinVariant,
};
use vit_profiler::GpuModel;
use vit_resilience::{table2_ade, table2_cityscapes, AccuracyModel, Workload};

fn segformer_b2() -> vit_graph::Graph {
    build_segformer(&SegFormerConfig::ade20k(SegFormerVariant::b2())).unwrap()
}

#[test]
fn claim_convolutions_dominate_segmentation_flops() {
    // "68% and 89% of the total FLOPs are in convolution layers in
    //  SegFormer and Swin-Tiny."
    let seg = segformer_b2();
    let swin = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
    let seg_share = seg.flops_by_class(OpClass::Conv) as f64 / seg.total_flops() as f64;
    let swin_share = swin.flops_by_class(OpClass::Conv) as f64 / swin.total_flops() as f64;
    assert!(
        (seg_share - 0.68).abs() < 0.05,
        "SegFormer conv share {seg_share:.2}"
    );
    assert!(
        (swin_share - 0.89).abs() < 0.05,
        "Swin conv share {swin_share:.2}"
    );
}

#[test]
fn claim_backbone_dominates_detection_and_grows_with_batch() {
    // Figure 1's shape: the ResNet-50 backbone dominates DETR time and its
    // share grows with batch size.
    let gpu = GpuModel::titan_v();
    let share = |batch: usize| {
        let g = build_detr(&DetrConfig::detr_coco().with_batch(batch)).unwrap();
        let mut backbone = 0.0;
        let mut rest = 0.0;
        for (_, n) in g.iter() {
            if matches!(n.role, vit_graph::LayerRole::Backbone) {
                backbone += gpu.node_time(&g, n);
            } else {
                rest += gpu.node_time(&g, n);
            }
        }
        backbone / (backbone + rest)
    };
    let s1 = share(1);
    let s16 = share(16);
    assert!(s1 > 0.6, "batch-1 share {s1:.2}");
    assert!(s16 > s1 && s16 > 0.8, "batch-16 share {s16:.2}");
}

#[test]
fn claim_ade_17pct_time_28pct_energy_at_small_drop() {
    // "we can save 17% of execution time (which drops energy consumption by
    //  28%) with less than a 6% drop in accuracy" (ADE, no retraining).
    let v = SegFormerVariant::b2();
    let gpu = GpuModel::titan_v();
    let model = AccuracyModel::for_workload(Workload::SegFormerAde);
    let full = segformer_b2();
    let mut best_time_saving = 0.0f64;
    let mut energy_at_best = 0.0f64;
    for p in table2_ade() {
        let d = p.to_segformer_dynamic(&v);
        if model.norm_miou_segformer(&d, &v) <= 0.94 {
            continue;
        }
        let g = build_segformer(&SegFormerConfig::ade20k(v).with_dynamic(d)).unwrap();
        let ts = 1.0 - gpu.total_time(&g) / gpu.total_time(&full);
        if ts > best_time_saving {
            best_time_saving = ts;
            energy_at_best = 1.0 - gpu.total_energy(&g) / gpu.total_energy(&full);
        }
    }
    assert!(
        best_time_saving >= 0.15,
        "time saving {best_time_saving:.2}"
    );
    assert!(
        energy_at_best > best_time_saving,
        "energy {energy_at_best:.2}"
    );
}

#[test]
fn claim_cityscapes_more_resilient_than_ade() {
    // The Cityscapes-trained model degrades more gracefully (§III-A).
    let v = SegFormerVariant::b2();
    let ade = AccuracyModel::for_workload(Workload::SegFormerAde);
    let city = AccuracyModel::for_workload(Workload::SegFormerCityscapes);
    // Compare in the mild-to-moderate pruning regime where the paper makes
    // the claim (deep-cut extrapolations of the ADE model are not anchored).
    for p in table2_cityscapes().iter().filter(|p| p.norm_miou >= 0.90) {
        let d = p.to_segformer_dynamic(&v);
        assert!(
            city.norm_miou_segformer(&d, &v) >= ade.norm_miou_segformer(&d, &v) - 0.03,
            "point {} breaks the resilience ordering",
            p.label
        );
    }
}

#[test]
fn claim_accelerator_speedup_over_gpu_is_an_order_of_magnitude() {
    // "The PE array ... is 17 times faster than a NVIDIA TITAN V GPU"
    // (we hold the claim at >= 12x under our calibrations).
    let gpu = GpuModel::titan_v();
    let opts = SimOptions::default();
    for (g, min_speedup) in [
        (segformer_b2(), 12.0),
        (
            build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap(),
            12.0,
        ),
    ] {
        let r = simulate(&g, &AccelConfig::accelerator_star(), &opts);
        let speedup = gpu.total_time(&g) / r.total_time_s();
        assert!(speedup >= min_speedup, "speedup {speedup:.1}");
        assert!(speedup <= 25.0, "speedup {speedup:.1} implausibly high");
    }
}

#[test]
fn claim_segformer_cycles_within_25pct_of_published() {
    // 4,415,208 cycles on accelerator_A; 4,540,195 on accelerator*.
    let opts = SimOptions::default();
    let g = segformer_b2();
    let a = simulate(&g, &AccelConfig::accelerator_a(), &opts).total_cycles() as f64;
    assert!((a - 4_415_208.0).abs() / 4_415_208.0 < 0.25, "A: {a}");
    let star = simulate(&g, &AccelConfig::accelerator_star(), &opts).total_cycles() as f64;
    assert!(
        (star - 4_540_195.0).abs() / 4_540_195.0 < 0.25,
        "star: {star}"
    );
}

#[test]
fn claim_swin_cycles_within_10pct_of_published() {
    // 15,482,594 cycles for Swin-Tiny on accelerator*.
    let g = build_swin_upernet(&SwinConfig::ade20k(SwinVariant::tiny())).unwrap();
    let c = simulate(&g, &AccelConfig::accelerator_star(), &SimOptions::default()).total_cycles()
        as f64;
    assert!((c - 15_482_594.0).abs() / 15_482_594.0 < 0.10, "got {c}");
}

#[test]
fn claim_small_accelerator_trades_area_not_speed() {
    // accelerator* is ~4x smaller, < 3% slower, ~equal energy.
    let g = segformer_b2();
    let opts = SimOptions::default();
    let a = simulate(&g, &AccelConfig::accelerator_a(), &opts);
    let star = simulate(&g, &AccelConfig::accelerator_star(), &opts);
    let area_ratio = AccelConfig::accelerator_a().pe_array_area_mm2()
        / AccelConfig::accelerator_star().pe_array_area_mm2();
    assert!(area_ratio > 3.3, "area ratio {area_ratio:.1}");
    let slowdown = star.total_cycles() as f64 / a.total_cycles() as f64;
    assert!((1.0..1.03).contains(&slowdown), "slowdown {slowdown:.3}");
    let energy = star.total_energy_j() / a.total_energy_j();
    assert!(energy < 1.05, "energy ratio {energy:.2}");
}

#[test]
fn claim_optimal_architecture_independent_of_model_complexity() {
    // §VI: the accelerator ranking does not change between the full model
    // (point A) and a heavily pruned one (point G).
    let v = SegFormerVariant::b2();
    let opts = SimOptions::default();
    let designs = [
        AccelConfig::with_vectorization(32, 32, 128, 64).unwrap(),
        AccelConfig::with_vectorization(16, 16, 128, 64).unwrap(),
        AccelConfig::with_vectorization(8, 8, 128, 64).unwrap(),
    ];
    let rank = |g: &vit_graph::Graph| -> Vec<usize> {
        let mut idx: Vec<usize> = (0..designs.len()).collect();
        let energies: Vec<f64> = designs
            .iter()
            .map(|c| simulate(g, c, &opts).total_energy_j())
            .collect();
        idx.sort_by(|&a, &b| energies[a].partial_cmp(&energies[b]).unwrap());
        idx
    };
    let full = segformer_b2();
    let pruned = build_segformer(&SegFormerConfig::ade20k(v).with_dynamic(
        SegFormerDynamic::with_depths_and_fuse(&v, [2, 3, 4, 3], 512),
    ))
    .unwrap();
    assert_eq!(rank(&full), rank(&pruned));
}

#[test]
fn claim_ofa_57pct_saving_on_accelerator() {
    // "this approach saves 57% of the execution time with less than a 5%
    //  drop in accuracy" (OFA ResNet-50 on accelerator_OFA2).
    let fam = ofa_family();
    let opts = SimOptions::default();
    let cycles = |i: usize| {
        simulate(
            &fam[i].build_backbone((480, 640), 1).unwrap().graph,
            &AccelConfig::ofa2(),
            &opts,
        )
        .total_cycles() as f64
    };
    let saving = 1.0 - cycles(fam.len() - 1) / cycles(0);
    let drop = fam[0].top1 - fam[fam.len() - 1].top1;
    assert!(saving > 0.45, "saving {saving:.2}");
    assert!(drop < 5.0, "drop {drop:.1}");
}

#[test]
fn claim_ofa_areas_match_table4() {
    let areas = [
        AccelConfig::ofa1().pe_array_area_mm2(),
        AccelConfig::ofa2().pe_array_area_mm2(),
        AccelConfig::ofa3().pe_array_area_mm2(),
    ];
    let paper = [8.33, 2.26, 1.66];
    for (a, p) in areas.iter().zip(paper.iter()) {
        assert!((a - p).abs() / p < 0.05, "got {a:.2}, paper {p}");
    }
}

#[test]
fn claim_ofa1_energy_exceeds_ofa2() {
    // Table IV: OFA1 16.5 > OFA2 14.3 normalized energy (bigger memories
    // cost access energy).
    let g = ofa_family()[0].build_backbone((480, 640), 1).unwrap().graph;
    let opts = SimOptions::default();
    let e1 = simulate(&g, &AccelConfig::ofa1(), &opts).total_energy_j();
    let e2 = simulate(&g, &AccelConfig::ofa2(), &opts).total_energy_j();
    assert!(e1 > e2, "OFA1 {e1:.4} <= OFA2 {e2:.4}");
}

#[test]
fn claim_batching_pushes_swin_curve_left() {
    // §III-B: "increasing the batch size pushes this curve to the left" —
    // at batch 16 the same channel cut saves a larger fraction of time.
    use vit_models::SwinDynamic;
    let v = SwinVariant::tiny();
    let gpu = GpuModel::titan_v();
    let time_at = |ch: usize, batch: usize| -> f64 {
        let cfg = SwinConfig::ade20k(v)
            .with_batch(batch)
            .with_dynamic(SwinDynamic {
                depths: v.depths,
                bottleneck_in_channels: ch,
            });
        gpu.total_time(&build_swin_upernet(&cfg).unwrap())
    };
    let saving_b1 = 1.0 - time_at(1024, 1) / time_at(2048, 1);
    let saving_b16 = 1.0 - time_at(1024, 16) / time_at(2048, 16);
    assert!(
        saving_b16 > saving_b1,
        "batch 16 saving {saving_b16:.3} should exceed batch 1 saving {saving_b1:.3}"
    );
    assert!(saving_b16 > 0.20, "batch-16 saving {saving_b16:.3}");
}

// ---------------------------------------------------------------------------
// Golden snapshots: exact pins of the engine's Pareto-path selection and of
// measured pruned-vs-full output fidelity at the executable 64x64 geometry.
// These values are deterministic (analytical profiler + seeded weights and
// scenes); a legitimate change to weight generation, the profiler, or LUT
// construction must update them consciously.
// ---------------------------------------------------------------------------

fn b0_engine() -> vit_drt::DrtEngine {
    vit_drt::DrtEngine::segformer(
        SegFormerVariant::b0(),
        Workload::SegFormerAde,
        (64, 64),
        vit_resilience::ResourceKind::GpuTime,
    )
    .unwrap()
}

fn swin_tiny_engine() -> vit_drt::DrtEngine {
    let v = SwinVariant::tiny();
    let space: Vec<vit_models::SwinDynamic> = [2048usize, 1536, 1024, 512]
        .iter()
        .map(|&ch| vit_models::SwinDynamic {
            depths: v.depths,
            bottleneck_in_channels: ch,
        })
        .collect();
    vit_drt::DrtEngine::swin(
        v,
        Workload::SwinTinyAde,
        (64, 64),
        &space,
        vit_resilience::ResourceKind::GpuTime,
    )
    .unwrap()
}

#[test]
fn golden_segformer_b0_pareto_path_selection() {
    use vit_drt::LutConfig;
    let engine = b0_engine();
    let lut = engine.lut();
    assert_eq!(lut.len(), 37, "LUT size changed");
    let first = &lut.entries()[0];
    assert!(
        (first.norm_resource - 0.603655).abs() < 1e-5,
        "cheapest norm_resource {}",
        first.norm_resource
    );
    assert!(
        (first.norm_miou - 0.498262).abs() < 1e-5,
        "cheapest norm_miou {}",
        first.norm_miou
    );
    let full = engine.max_resource();
    assert!((full - 0.001629270).abs() < 1e-8, "max_resource {full}");
    // Below the cheapest path the budget is infeasible.
    assert!(lut.lookup(0.55 * full).is_err());
    // The selected depths walk the Pareto frontier one stage at a time; the
    // fuse stays at full width because the fuse cut buys little at 64x64.
    let expect = [
        (0.65, [1usize, 1, 1, 1]),
        (0.75, [1, 1, 2, 1]),
        (0.85, [1, 1, 2, 2]),
        (0.95, [1, 2, 2, 2]),
        (1.0, [2, 2, 2, 2]),
    ];
    for (frac, want_depths) in expect {
        let e = lut.lookup(frac * full).unwrap();
        match e.config {
            LutConfig::SegFormer {
                depths,
                fuse_in_channels,
                ..
            } => {
                assert_eq!(depths, want_depths, "depths at budget fraction {frac}");
                assert_eq!(fuse_in_channels, 1024, "fuse at budget fraction {frac}");
            }
            ref other => panic!("unexpected config {other:?}"),
        }
    }
}

#[test]
fn golden_swin_tiny_pareto_path_selection() {
    use vit_drt::LutConfig;
    let engine = swin_tiny_engine();
    let lut = engine.lut();
    assert_eq!(lut.len(), 4, "LUT size changed");
    let golden = [
        (512usize, 0.715023, 0.58),
        (1024, 0.810486, 0.77),
        (1536, 0.905949, 0.91),
        (2048, 1.0, 1.0),
    ];
    for (e, (ch, res, miou)) in lut.entries().iter().zip(golden) {
        match e.config {
            LutConfig::Swin {
                bottleneck_in_channels,
                ..
            } => {
                assert_eq!(bottleneck_in_channels, ch)
            }
            ref other => panic!("unexpected config {other:?}"),
        }
        assert!(
            (e.norm_resource - res).abs() < 1e-5,
            "norm_resource {}",
            e.norm_resource
        );
        assert!(
            (e.norm_miou - miou).abs() < 1e-5,
            "norm_miou {}",
            e.norm_miou
        );
    }
    let full = engine.max_resource();
    assert!(lut.lookup(0.7 * full).is_err());
    for (frac, want_ch) in [(0.8, 512), (0.9, 1024), (1.0, 2048)] {
        match lut.lookup(frac * full).unwrap().config {
            LutConfig::Swin {
                bottleneck_in_channels,
                ..
            } => {
                assert_eq!(bottleneck_in_channels, want_ch, "at budget fraction {frac}")
            }
            ref other => panic!("unexpected config {other:?}"),
        }
    }
}

#[test]
fn golden_output_fidelity_cheapest_vs_full_path() {
    use vit_data::{pixel_accuracy, Dataset, SceneGenerator};
    let scene = SceneGenerator::new(Dataset::Ade20k, 5).sample_sized(0, 64, 64);

    let mut b0 = b0_engine();
    let full = b0.max_resource();
    let full_out = b0.infer(&scene.image, full).unwrap();
    let cheapest = b0.lut().entries()[0].norm_resource;
    let cheap_out = b0.infer(&scene.image, (cheapest + 0.02) * full).unwrap();
    let agree = pixel_accuracy(&cheap_out.label_map, &full_out.label_map);
    assert!((agree - 0.310791).abs() < 1e-6, "B0 fidelity {agree}");

    let mut swin = swin_tiny_engine();
    let sfull = swin.max_resource();
    let sf = swin.infer(&scene.image, sfull).unwrap();
    let scheap = swin.lut().entries()[0].norm_resource;
    let sc = swin.infer(&scene.image, (scheap + 0.02) * sfull).unwrap();
    let sagree = pixel_accuracy(&sc.label_map, &sf.label_map);
    assert!((sagree - 0.872070).abs() < 1e-6, "Swin fidelity {sagree}");
}

#[test]
fn claim_736_channel_config_beats_full_model() {
    // The paper's surprising no-retraining improvement.
    let v = SegFormerVariant::b2();
    let model = AccuracyModel::for_workload(Workload::SegFormerAde);
    let mut d = SegFormerDynamic::full(&v);
    d.fuse_out_channels = 736;
    assert!(model.norm_miou_segformer(&d, &v) > 1.0);
    let gpu = GpuModel::titan_v();
    let faster = build_segformer(&SegFormerConfig::ade20k(v).with_dynamic(d)).unwrap();
    assert!(gpu.total_time(&faster) < gpu.total_time(&segformer_b2()));
}
