/root/repo/target/debug/deps/proptest-23ffe08631b116d3.d: vendor/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-23ffe08631b116d3: vendor/proptest/src/lib.rs

vendor/proptest/src/lib.rs:
